/**
 * @file
 * Conformance suite of the architecture plugin registry: every
 * registered architecture — current and future — must uphold the
 * simulator-wide contracts the rest of the system assumes. For each
 * plugin in the registry:
 *
 *   - SimStats are bit-identical at smxThreads 1 and 4 (the parallel
 *     engine's determinism promise);
 *   - the issue-slot attribution ledger conserves (every slot of every
 *     cycle is attributed exactly once) and profiling never alters
 *     SimStats;
 *   - after a run, the plugin's counter namespace is non-empty — the
 *     architecture cannot silently lose its observability wiring;
 *   - a DRS_CHECK=1 run (lockstep reference interpreter + cycle-level
 *     invariants) passes and leaves SimStats untouched.
 *
 * Plus the registry mechanics themselves: the built-in lineup, loud
 * failure for unknown architectures, duplicate rejection, and runtime
 * registration being picked up by runBatch immediately.
 */

#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "harness/arch_detail.h"
#include "harness/arch_plugin.h"
#include "harness/harness.h"
#include "reorder/reorder.h"

namespace drs::harness {
namespace {

ExperimentScale
testScale()
{
    ExperimentScale scale;
    scale.sceneScale = 0.1f;
    scale.width = 128;
    scale.height = 96;
    scale.samplesPerPixel = 1;
    scale.raysPerBounce = 4096;
    scale.numSmx = 2;
    return scale;
}

/** One scene, prepared once for the whole suite. */
const PreparedScene &
prepared()
{
    static const PreparedScene scene =
        prepareScene(scene::SceneId::Conference, testScale());
    return scene;
}

std::span<const geom::Ray>
testRays()
{
    const auto &rays = prepared().trace.bounce(2).rays;
    std::span<const geom::Ray> span(rays);
    return span.size() > 768 ? span.first(768) : span;
}

RunConfig
baseConfig()
{
    RunConfig config;
    config.gpu.numSmx = testScale().numSmx;
    config.check = 0;
    return config;
}

TEST(ArchRegistry, BuiltinLineupIsRegisteredInSurveyOrder)
{
    const auto archs = ArchRegistry::instance().archs();
    ASSERT_GE(archs.size(), 8u);
    const char *expected[] = {"aila", "drs", "dmk", "tbc", "sort",
                              "cutcode", "ser", "pathpred"};
    for (std::size_t i = 0; i < std::size(expected); ++i)
        EXPECT_EQ(archs[i].name(), expected[i]) << "lineup position " << i;

    // The paper's constants resolve to the same plugins.
    for (const Arch &arch : {Arch::Aila, Arch::Drs, Arch::Dmk, Arch::Tbc})
        EXPECT_NE(ArchRegistry::instance().find(arch), nullptr)
            << arch.name();
}

TEST(ArchRegistry, PluginsDeclareDistinctNonEmptyIdentity)
{
    std::vector<std::string> seen;
    for (const ArchPlugin *plugin : ArchRegistry::instance().plugins()) {
        EXPECT_FALSE(plugin->name().empty());
        EXPECT_FALSE(plugin->description().empty()) << plugin->name();
        EXPECT_FALSE(plugin->counterNamespace().empty()) << plugin->name();
        for (const std::string &name : seen)
            EXPECT_NE(name, plugin->name()) << "duplicate registration";
        seen.push_back(plugin->name());
    }
}

TEST(ArchRegistry, UnknownArchitectureFailsLoudly)
{
    EXPECT_EQ(ArchRegistry::instance().find(Arch("no-such-arch")), nullptr);
    try {
        runBatch(Arch("no-such-arch"), *prepared().tracer, testRays(),
                 baseConfig());
        FAIL() << "runBatch accepted an unregistered architecture";
    } catch (const std::invalid_argument &e) {
        // The message must name the lineup so the failure is actionable.
        EXPECT_NE(std::string(e.what()).find("no-such-arch"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("aila"), std::string::npos);
    }

    EXPECT_THROW(runBatch(Arch(), *prepared().tracer, testRays(),
                          baseConfig()),
                 std::invalid_argument)
        << "an empty handle must be rejected";
}

TEST(ArchRegistry, DuplicateAndNullRegistrationsAreRejected)
{
    /** A minimal plugin whose only purpose is name collision. */
    class Impostor : public ArchPlugin
    {
      public:
        std::string name() const override { return "aila"; }
        std::string description() const override { return "impostor"; }
        std::string counterNamespace() const override { return "smx"; }
        simt::SimStats run(const render::PathTracer &,
                           std::span<const geom::Ray>, const RunConfig &,
                           const ArchObservers &,
                           const check::Checker *) const override
        {
            return {};
        }
        check::BatchCheckInputs
        checkInputs(const RunConfig &) const override
        {
            return {};
        }
    };

    EXPECT_THROW(ArchRegistry::instance().add(std::make_unique<Impostor>()),
                 std::invalid_argument);
    EXPECT_THROW(ArchRegistry::instance().add(nullptr),
                 std::invalid_argument);
}

TEST(ArchRegistry, RuntimeRegistrationIsPickedUpEverywhere)
{
    /**
     * A fully conformant external architecture: delegates to the aila
     * plugin under a new name, exactly what an out-of-tree experiment
     * would do to reuse an executor.
     */
    class Echo : public ArchPlugin
    {
      public:
        std::string name() const override { return "echo-aila"; }
        std::string description() const override
        {
            return "runtime-registered delegate of the aila plugin";
        }
        std::string counterNamespace() const override
        {
            return delegate().counterNamespace();
        }
        simt::SimStats run(const render::PathTracer &tracer,
                           std::span<const geom::Ray> rays,
                           const RunConfig &config,
                           const ArchObservers &observers,
                           const check::Checker *checker) const override
        {
            return delegate().run(tracer, rays, config, observers, checker);
        }
        check::BatchCheckInputs
        checkInputs(const RunConfig &config) const override
        {
            return delegate().checkInputs(config);
        }

      private:
        static const ArchPlugin &delegate()
        {
            return ArchRegistry::instance().get(Arch::Aila);
        }
    };

    // Register once for the whole process (tests may run in any order).
    static const ArchRegistrar registrar{std::make_unique<Echo>()};
    const Arch arch = registrar.arch();
    EXPECT_EQ(arch.name(), "echo-aila");
    EXPECT_NE(ArchRegistry::instance().find(arch), nullptr);

    // runBatch resolves it like any builtin — including the checked path
    // (lockstep reference interpreter), with results identical to aila.
    RunConfig config = baseConfig();
    config.check = 1;
    const auto echoed = runBatch(arch, *prepared().tracer, testRays(),
                                 config);
    const auto direct = runBatch(Arch::Aila, *prepared().tracer, testRays(),
                                 config);
    EXPECT_TRUE(echoed == direct)
        << "the delegate must reproduce aila bit-for-bit";
}

class RegistryConformance : public ::testing::TestWithParam<std::string>
{
  protected:
    Arch arch() const { return Arch(GetParam()); }
    const ArchPlugin &plugin() const
    {
        return ArchRegistry::instance().get(arch());
    }
};

TEST_P(RegistryConformance, SimStatsAreDeterministicAcrossSmxThreads)
{
    RunConfig config = baseConfig();
    config.smxThreads = 1;
    const auto sequential =
        runBatch(arch(), *prepared().tracer, testRays(), config);
    EXPECT_EQ(sequential.raysTraced, testRays().size());
    EXPECT_GT(sequential.cycles, 0u);

    config.smxThreads = 4;
    const auto parallel =
        runBatch(arch(), *prepared().tracer, testRays(), config);
    EXPECT_TRUE(sequential == parallel)
        << "SimStats differ between smxThreads=1 and smxThreads=4";
}

TEST_P(RegistryConformance, CounterNamespaceIsPopulatedAfterARun)
{
    const auto stats =
        runBatch(arch(), *prepared().tracer, testRays(), baseConfig());
    const std::string prefix = plugin().counterNamespace() + ".";
    bool found = false;
    for (const auto &[name, value] : stats.counters.entries())
        if (name.compare(0, prefix.size(), prefix) == 0) {
            found = true;
            break;
        }
    EXPECT_TRUE(found) << "no \"" << prefix
                       << "*\" counter after a run — the architecture "
                          "lost its observability wiring";
}

TEST_P(RegistryConformance, AttributionLedgerConservesAndObservesPurely)
{
    RunConfig config = baseConfig();
    const auto plain =
        runBatch(arch(), *prepared().tracer, testRays(), config);

    config.sample.enabled = true;
    config.sample.interval = 64;
    config.sample.capacity = 256;
    RunObservations observations;
    config.observationsOut = &observations;
    const auto sampled =
        runBatch(arch(), *prepared().tracer, testRays(), config);

    EXPECT_TRUE(plain == sampled) << "profiling altered SimStats";
    ASSERT_NE(observations.attribution, nullptr);
    ASSERT_NE(observations.sampler, nullptr);
    // Throws std::logic_error when any issue slot went missing or was
    // double-counted.
    EXPECT_NO_THROW(observations.attribution->merged().verifyConservation());
}

TEST_P(RegistryConformance, EmptyBatchCompletesWithZeroRays)
{
    RunConfig config = baseConfig();
    config.check = 1;
    std::vector<geom::Hit> hits;
    config.hitsOut = &hits;
    simt::SimStats stats;
    ASSERT_NO_THROW(stats = runBatch(arch(), *prepared().tracer,
                                     testRays().first(0), config));
    EXPECT_EQ(stats.raysTraced, 0u);
    EXPECT_TRUE(hits.empty());
}

TEST_P(RegistryConformance, SingleRayBatchTracesAndVerifies)
{
    RunConfig config = baseConfig();
    config.check = 1; // the lockstep reference validates the hit too
    std::vector<geom::Hit> hits;
    config.hitsOut = &hits;
    simt::SimStats stats;
    ASSERT_NO_THROW(stats = runBatch(arch(), *prepared().tracer,
                                     testRays().first(1), config));
    EXPECT_EQ(stats.raysTraced, 1u);
    ASSERT_EQ(hits.size(), 1u);

    // And it is deterministic like any other batch size.
    std::vector<geom::Hit> again_hits;
    config.hitsOut = &again_hits;
    const auto again = runBatch(arch(), *prepared().tracer,
                                testRays().first(1), config);
    EXPECT_TRUE(stats == again);
    ASSERT_EQ(again_hits.size(), 1u);
    EXPECT_EQ(hits[0].triangle, again_hits[0].triangle);
}

TEST_P(RegistryConformance, LockstepCheckPassesAndIsAPureObserver)
{
    const auto unchecked =
        runBatch(arch(), *prepared().tracer, testRays(), baseConfig());

    RunConfig config = baseConfig();
    config.check = 1;
    std::vector<geom::Hit> hits;
    config.hitsOut = &hits;
    simt::SimStats checked;
    ASSERT_NO_THROW(checked = runBatch(arch(), *prepared().tracer,
                                       testRays(), config))
        << "DRS_CHECK=1 found an invariant violation";
    EXPECT_TRUE(unchecked == checked) << "DRS_CHECK=1 altered SimStats";
    EXPECT_EQ(hits.size(), testRays().size());
}

// Regression: quantize() used to cast a non-finite float straight to
// uint32_t (UB under UBSan); NaN/Inf ray origins — the fuzzer produces
// them — must map to grid cell 0 instead of tripping the sanitizer.
TEST(ReorderKeys, NonFiniteOriginsQuantizeToCellZero)
{
    const geom::Aabb bounds{{0.0f, 0.0f, 0.0f}, {10.0f, 10.0f, 10.0f}};
    reorder::ReorderConfig config;

    geom::Ray at_lo;
    at_lo.origin = {0.0f, 0.0f, 0.0f};
    at_lo.direction = {0.0f, 0.0f, 1.0f};

    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float inf = std::numeric_limits<float>::infinity();
    for (const float bad : {nan, inf, -inf}) {
        geom::Ray ray = at_lo;
        ray.origin = {bad, bad, bad};
        EXPECT_EQ(reorder::hashGridKey(ray, bounds, config),
                  reorder::hashGridKey(at_lo, bounds, config))
            << "non-finite origin must land in cell 0";

        geom::Ray mixed = at_lo;
        mixed.origin.y = bad; // one bad axis, the others still quantize
        geom::Ray mixed_lo = at_lo;
        mixed_lo.origin.y = 0.0f;
        EXPECT_EQ(reorder::hashGridKey(mixed, bounds, config),
                  reorder::hashGridKey(mixed_lo, bounds, config));
    }
}

// Regression: the reorder plugins' hit scatter used to index
// sorted_hits[p] unchecked; a short inner-run hit vector (dropped rays)
// must throw with the counts instead of reading out of bounds.
TEST(ScatterHits, ShortHitVectorFailsLoudly)
{
    const std::vector<std::uint32_t> order = {1, 0, 2};
    std::vector<geom::Hit> out;

    std::vector<geom::Hit> sorted(3);
    sorted[0].triangle = 7;
    sorted[1].triangle = 8;
    sorted[2].triangle = 9;
    detail::scatterHits(order, sorted, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[1].triangle, 7);
    EXPECT_EQ(out[0].triangle, 8);
    EXPECT_EQ(out[2].triangle, 9);

    sorted.pop_back();
    try {
        detail::scatterHits(order, sorted, out);
        FAIL() << "a short hit vector must be rejected";
    } catch (const std::logic_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2"), std::string::npos) << what;
        EXPECT_NE(what.find("3"), std::string::npos) << what;
    }
}

std::vector<std::string>
builtinLineup()
{
    // The parameter list is evaluated at static-init time, before any
    // test could register extra plugins, so this enumerates exactly the
    // built-in lineup.
    std::vector<std::string> names;
    for (const Arch &arch : ArchRegistry::instance().archs())
        names.push_back(arch.name());
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredArchs, RegistryConformance,
                         ::testing::ValuesIn(builtinLineup()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace drs::harness
