/**
 * @file
 * Statistical regression tests: the paper's headline quantitative claims,
 * pinned against golden expectations checked into tests/golden/. For
 * every paper scene on the incoherent second bounce:
 *
 *   - DRS SIMD efficiency must beat the Aila software baseline (the
 *     paper's core qualitative result, always enforced);
 *   - DRS cycle-count speedup over Aila and both SIMD efficiencies must
 *     stay inside a band around the golden values, so perf-affecting
 *     regressions (or accidental model changes) fail loudly.
 *
 * The simulator is deterministic, so the bands are tight; they exist to
 * absorb intentional model retunes, not noise. Regenerate goldens with:
 *
 *     ./build/tests/test_statistical --update-golden
 *
 * The measurement scale is fixed in-source (the DRS_* environment
 * overrides are ignored) so goldens mean the same thing everywhere.
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/harness.h"
#include "harness/sweep.h"
#include "obs/json.h"

#ifndef DRS_GOLDEN_DIR
#error "DRS_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace drs::harness {
namespace {

/** Relative band around the golden speedup. */
constexpr double kSpeedupTolerance = 0.10;
/** Absolute band around the golden SIMD efficiencies. */
constexpr double kEfficiencyTolerance = 0.03;

std::string
goldenPath()
{
    return std::string(DRS_GOLDEN_DIR) + "/expectations.json";
}

/** Fixed measurement scale — deliberately NOT fromEnvironment(). */
ExperimentScale
measurementScale()
{
    ExperimentScale scale;
    scale.sceneScale = 0.15f;
    scale.width = 128;
    scale.height = 96;
    scale.samplesPerPixel = 1;
    // Small enough to keep the suite quick, large enough that the batch
    // is not drain-dominated (DRS needs a standing population of rays to
    // shuffle; tiny batches hide its advantage).
    scale.raysPerBounce = 16384;
    scale.numSmx = 2;
    return scale;
}

struct SceneMeasurement
{
    double ailaSimdEfficiency = 0.0;
    double drsSimdEfficiency = 0.0;
    /** Aila cycles / DRS cycles on the same batch. */
    double drsSpeedupVsAila = 0.0;
    // Software reordering survey (bench_reorder_survey's tiny-scale rows).
    double sortSimdEfficiency = 0.0;
    double sortSpeedupVsAila = 0.0;
    double cutcodeSimdEfficiency = 0.0;
    double cutcodeSpeedupVsAila = 0.0;
    // Survey completion: SER-style shading reorder + path prediction.
    double serSimdEfficiency = 0.0;
    double serSpeedupVsAila = 0.0;
    double pathpredSimdEfficiency = 0.0;
    double pathpredSpeedupVsAila = 0.0;
};

/** Run the fixed-scale measurement sweep (all scenes, bounce 2). */
std::map<std::string, SceneMeasurement>
measure()
{
    const ExperimentScale scale = measurementScale();
    SweepRunner runner(scale, 4);
    struct Slot
    {
        scene::SceneId id;
        std::size_t aila;
        std::size_t drs;
        std::size_t sort;
        std::size_t cutcode;
        std::size_t ser;
        std::size_t pathpred;
    };
    std::vector<Slot> slots;
    for (scene::SceneId id : scene::allSceneIds()) {
        SweepJob job;
        job.scene = id;
        job.config.gpu.numSmx = scale.numSmx;
        job.bounce = 2;
        job.arch = Arch::Aila;
        const std::size_t aila = runner.add(job);
        job.arch = Arch::Drs;
        const std::size_t drs = runner.add(job);
        job.arch = Arch("sort");
        const std::size_t sort = runner.add(job);
        job.arch = Arch("cutcode");
        const std::size_t cutcode = runner.add(job);
        job.arch = Arch("ser");
        const std::size_t ser = runner.add(job);
        job.arch = Arch("pathpred");
        const std::size_t pathpred = runner.add(job);
        slots.push_back({id, aila, drs, sort, cutcode, ser, pathpred});
    }
    const auto results = runner.run();

    std::map<std::string, SceneMeasurement> measurements;
    for (const Slot &slot : slots) {
        const auto &aila = results[slot.aila].stats;
        const auto &drs = results[slot.drs].stats;
        const auto &sort = results[slot.sort].stats;
        const auto &cutcode = results[slot.cutcode].stats;
        auto speedup = [&aila](const simt::SimStats &s) {
            return s.cycles ? static_cast<double>(aila.cycles) /
                                  static_cast<double>(s.cycles)
                            : 0.0;
        };
        SceneMeasurement m;
        m.ailaSimdEfficiency = aila.histogram.simdEfficiency();
        m.drsSimdEfficiency = drs.histogram.simdEfficiency();
        m.drsSpeedupVsAila = speedup(drs);
        m.sortSimdEfficiency = sort.histogram.simdEfficiency();
        m.sortSpeedupVsAila = speedup(sort);
        m.cutcodeSimdEfficiency = cutcode.histogram.simdEfficiency();
        m.cutcodeSpeedupVsAila = speedup(cutcode);
        const auto &ser = results[slot.ser].stats;
        const auto &pathpred = results[slot.pathpred].stats;
        m.serSimdEfficiency = ser.histogram.simdEfficiency();
        m.serSpeedupVsAila = speedup(ser);
        m.pathpredSimdEfficiency = pathpred.histogram.simdEfficiency();
        m.pathpredSpeedupVsAila = speedup(pathpred);
        measurements[scene::sceneName(slot.id)] = m;
    }
    return measurements;
}

/** The sweep is expensive; run it once for the whole suite. */
const std::map<std::string, SceneMeasurement> &
measurements()
{
    static const std::map<std::string, SceneMeasurement> cached = measure();
    return cached;
}

std::optional<obs::Json>
loadGolden(std::string *error)
{
    std::ifstream in(goldenPath(), std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + goldenPath() +
                     " (regenerate with --update-golden)";
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return obs::Json::parse(text.str(), error);
}

class StatisticalTest : public ::testing::TestWithParam<scene::SceneId>
{
};

TEST_P(StatisticalTest, DrsBeatsAilaSimdEfficiency)
{
    const auto &m = measurements().at(scene::sceneName(GetParam()));
    EXPECT_GT(m.drsSimdEfficiency, m.ailaSimdEfficiency);
    // The paper's Figure 10 shape: the gap is structural, not marginal.
    EXPECT_GT(m.drsSimdEfficiency - m.ailaSimdEfficiency, 0.05);
}

TEST_P(StatisticalTest, SpeedupAndEfficiencyWithinGoldenBand)
{
    std::string error;
    const auto golden = loadGolden(&error);
    ASSERT_TRUE(golden.has_value()) << error;

    const obs::Json *scenes = golden->find("scenes");
    ASSERT_NE(scenes, nullptr) << "golden file has no \"scenes\" object";
    const std::string name = scene::sceneName(GetParam());
    const obs::Json *expected = scenes->find(name);
    ASSERT_NE(expected, nullptr)
        << "no golden entry for " << name
        << " (regenerate with --update-golden)";

    const auto &m = measurements().at(name);
    const double speedup = expected->find("drs_speedup_vs_aila")->asDouble();
    EXPECT_NEAR(m.drsSpeedupVsAila, speedup, speedup * kSpeedupTolerance)
        << name << ": DRS speedup drifted from the golden value";
    EXPECT_NEAR(m.ailaSimdEfficiency,
                expected->find("aila_simd_efficiency")->asDouble(),
                kEfficiencyTolerance)
        << name;
    EXPECT_NEAR(m.drsSimdEfficiency,
                expected->find("drs_simd_efficiency")->asDouble(),
                kEfficiencyTolerance)
        << name;
}

TEST_P(StatisticalTest, ReorderSurveyWithinGoldenBand)
{
    // The software reordering survey rows (sort, cutcode) are pinned the
    // same way the DRS headline numbers are: the simulator is
    // deterministic, so drifting out of the band means the reordering
    // passes or the cost model changed.
    std::string error;
    const auto golden = loadGolden(&error);
    ASSERT_TRUE(golden.has_value()) << error;

    const obs::Json *scenes = golden->find("scenes");
    ASSERT_NE(scenes, nullptr) << "golden file has no \"scenes\" object";
    const std::string name = scene::sceneName(GetParam());
    const obs::Json *expected = scenes->find(name);
    ASSERT_NE(expected, nullptr)
        << "no golden entry for " << name
        << " (regenerate with --update-golden)";
    ASSERT_NE(expected->find("sort_speedup_vs_aila"), nullptr)
        << "golden file predates the reorder survey "
        << "(regenerate with --update-golden)";

    const auto &m = measurements().at(name);
    struct Row
    {
        const char *efficiencyKey;
        const char *speedupKey;
        double efficiency;
        double speedup;
    };
    for (const Row &row :
         {Row{"sort_simd_efficiency", "sort_speedup_vs_aila",
              m.sortSimdEfficiency, m.sortSpeedupVsAila},
          Row{"cutcode_simd_efficiency", "cutcode_speedup_vs_aila",
              m.cutcodeSimdEfficiency, m.cutcodeSpeedupVsAila},
          Row{"ser_simd_efficiency", "ser_speedup_vs_aila",
              m.serSimdEfficiency, m.serSpeedupVsAila},
          Row{"pathpred_simd_efficiency", "pathpred_speedup_vs_aila",
              m.pathpredSimdEfficiency, m.pathpredSpeedupVsAila}}) {
        EXPECT_NEAR(row.efficiency,
                    expected->find(row.efficiencyKey)->asDouble(),
                    kEfficiencyTolerance)
            << name << ": " << row.efficiencyKey;
        const double golden_speedup =
            expected->find(row.speedupKey)->asDouble();
        EXPECT_NEAR(row.speedup, golden_speedup,
                    golden_speedup * kSpeedupTolerance)
            << name << ": " << row.speedupKey;
    }
}

INSTANTIATE_TEST_SUITE_P(AllScenes, StatisticalTest,
                         ::testing::ValuesIn(scene::allSceneIds()),
                         [](const auto &info) {
                             return scene::sceneName(info.param);
                         });

int
updateGolden()
{
    obs::Json doc = obs::Json::object();
    const ExperimentScale scale = measurementScale();
    doc["scale"]["rays_per_bounce"] = scale.raysPerBounce;
    doc["scale"]["scene_scale"] = static_cast<double>(scale.sceneScale);
    doc["scale"]["num_smx"] = scale.numSmx;
    doc["scale"]["bounce"] = 2;
    doc["bands"]["speedup_relative_tolerance"] = kSpeedupTolerance;
    doc["bands"]["efficiency_absolute_tolerance"] = kEfficiencyTolerance;
    doc["scenes"] = obs::Json::object();
    for (const auto &[name, m] : measurements()) {
        obs::Json &scene = doc["scenes"][name];
        scene["aila_simd_efficiency"] = m.ailaSimdEfficiency;
        scene["drs_simd_efficiency"] = m.drsSimdEfficiency;
        scene["drs_speedup_vs_aila"] = m.drsSpeedupVsAila;
        scene["sort_simd_efficiency"] = m.sortSimdEfficiency;
        scene["sort_speedup_vs_aila"] = m.sortSpeedupVsAila;
        scene["cutcode_simd_efficiency"] = m.cutcodeSimdEfficiency;
        scene["cutcode_speedup_vs_aila"] = m.cutcodeSpeedupVsAila;
        scene["ser_simd_efficiency"] = m.serSimdEfficiency;
        scene["ser_speedup_vs_aila"] = m.serSpeedupVsAila;
        scene["pathpred_simd_efficiency"] = m.pathpredSimdEfficiency;
        scene["pathpred_speedup_vs_aila"] = m.pathpredSpeedupVsAila;
    }

    const std::string path = goldenPath();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return 1;
    }
    doc.dump(out, 2);
    out << "\n";
    std::printf("wrote %s\n%s\n", path.c_str(), doc.dump(2).c_str());
    return out ? 0 : 1;
}

} // namespace
} // namespace drs::harness

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--update-golden")
            return drs::harness::updateGolden();
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
