#!/usr/bin/env python3
"""Validate a Chrome trace_event file written by obs::TraceCollector.

Structural checks a chrome://tracing / Perfetto load would only fail
silently on:

 - top level is {"traceEvents": [...], "otherData": {...}} with a
   non-negative "dropped_events" count;
 - every event is ph "X" (complete span), "C" (counter sample), "i"
   (instant, used by the fleet coordinator for kill/respawn/redispatch
   marks) or "M" (metadata), with non-negative integer timestamps;
   spans have dur >= 1;
 - every pid that emits spans or counters carries a "process_name"
   metadata record, and every (pid, tid) that emits spans carries a
   "thread_name" record (the Perfetto track labels);
 - counter samples of one (pid, name) track appear in non-decreasing
   ts order (Perfetto draws unordered counters as garbage);
 - when sampling was on, the dedicated "timeline" process pairs every
   "issue_slots" sample with a "work" sample at the same ts.

Usage: check_trace.py TRACE.json [...]
"""

import json
import sys


def is_count(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def validate_span(event, where):
    for field in ("pid", "tid"):
        if not isinstance(event.get(field), int):
            return f"{where}: span needs integer {field}"
    if not is_count(event.get("ts")):
        return f"{where}: span needs non-negative ts"
    dur = event.get("dur")
    if not is_count(dur) or dur < 1:
        return f"{where}: span needs dur >= 1"
    if not isinstance(event.get("name"), str) or not event["name"]:
        return f"{where}: span needs a name"
    if event.get("cat") not in ("warp", "rayhw", "fleet"):
        return f"{where}: span cat must be warp, rayhw or fleet"
    return ""


def validate_instant(event, where):
    if not isinstance(event.get("pid"), int):
        return f"{where}: instant needs integer pid"
    if not is_count(event.get("ts")):
        return f"{where}: instant needs non-negative ts"
    if not isinstance(event.get("name"), str) or not event["name"]:
        return f"{where}: instant needs a name"
    return ""


def validate_counter(event, where):
    if not isinstance(event.get("pid"), int):
        return f"{where}: counter needs integer pid"
    if not is_count(event.get("ts")):
        return f"{where}: counter needs non-negative ts"
    args = event.get("args")
    if not isinstance(args, dict) or not args:
        return f"{where}: counter needs a non-empty args object"
    for name, value in args.items():
        if not is_count(value):
            return f"{where}: counter arg {name} must be a non-negative int"
    return ""


def validate_trace(document):
    if not isinstance(document, dict):
        return "document is not an object"
    other = document.get("otherData")
    if not isinstance(other, dict) or not is_count(other.get("dropped_events")):
        return 'missing "otherData.dropped_events" count'
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return 'missing "traceEvents" array'

    process_names = {}
    thread_names = set()
    span_tracks = set()
    counter_pids = set()
    counter_last_ts = {}
    timeline_counts = {}

    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            return f"{where} is not an object"
        phase = event.get("ph")
        if phase == "M":
            name = event.get("name")
            args = event.get("args", {})
            if name == "process_name":
                process_names[event.get("pid")] = args.get("name")
            elif name == "thread_name":
                thread_names.add((event.get("pid"), event.get("tid")))
            else:
                return f"{where}: unknown metadata record {name!r}"
            if not isinstance(args.get("name"), str) or not args["name"]:
                return f"{where}: metadata needs a non-empty args.name"
        elif phase == "X":
            reason = validate_span(event, where)
            if reason:
                return reason
            span_tracks.add((event["pid"], event["tid"]))
        elif phase == "C":
            reason = validate_counter(event, where)
            if reason:
                return reason
            counter_pids.add(event["pid"])
            track = (event["pid"], event["name"])
            if counter_last_ts.get(track, -1) > event["ts"]:
                return (f"{where}: counter track {track} not in "
                        "non-decreasing ts order")
            counter_last_ts[track] = event["ts"]
            if process_names.get(event["pid"]) == "timeline":
                key = (event["name"], event["ts"])
                timeline_counts[key] = timeline_counts.get(key, 0) + 1
        elif phase == "i":
            reason = validate_instant(event, where)
            if reason:
                return reason
        else:
            return f"{where}: unknown ph {phase!r}"

    for pid, tid in span_tracks:
        if (pid, tid) not in thread_names:
            return f"span track pid={pid} tid={tid} has no thread_name"
    for pid in counter_pids | {pid for pid, _ in span_tracks}:
        if pid not in process_names:
            return f"pid {pid} has no process_name"

    # Sampling on => issue_slots and work come in pairs per window.
    slots = {ts for name, ts in timeline_counts if name == "issue_slots"}
    work = {ts for name, ts in timeline_counts if name == "work"}
    if slots != work:
        return ("timeline issue_slots and work samples are not paired "
                f"({len(slots)} vs {len(work)} windows)")
    return ""


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} TRACE.json [...]", file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"FAIL {path}: {error}")
            failures += 1
            continue
        reason = validate_trace(document)
        if reason:
            print(f"FAIL {path}: {reason}")
            failures += 1
        else:
            spans = sum(1 for e in document["traceEvents"]
                        if e.get("ph") == "X")
            counters = sum(1 for e in document["traceEvents"]
                           if e.get("ph") == "C")
            print(f"ok   {path} ({spans} spans, {counters} counter samples)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
