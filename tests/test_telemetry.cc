/**
 * @file
 * Telemetry-pipeline tests: the structured event log (obs::EventLog —
 * level parsing, environment configuration, JSONL emission, level
 * filtering, the per-(subsystem, event) rate limiter) and the trace-ring
 * overflow surface (ring_dropped must show up in the Chrome trace's
 * counter track, in RunObservations, and in the schema-v4 bench-report
 * "trace" row section). Everything here is a pure observer: the sim
 * tests assert counters only, never SimStats differences.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "harness/harness.h"
#include "harness/report.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace drs::obs {
namespace {

std::string
tempPath(const char *stem)
{
    return ::testing::TempDir() + stem + "." +
           std::to_string(static_cast<long>(::getpid()));
}

std::vector<Json>
readJsonl(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::vector<Json> records;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string error;
        const auto parsed = Json::parse(line, &error);
        EXPECT_TRUE(parsed.has_value()) << error << ": " << line;
        if (parsed)
            records.push_back(*parsed);
    }
    return records;
}

// ---------------------------------------------------------------- levels

TEST(LogLevel, NamesRoundTrip)
{
    EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Error), "error");
    EXPECT_STREQ(logLevelName(LogLevel::Off), "off");
    for (LogLevel level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                           LogLevel::Error, LogLevel::Off}) {
        LogLevel parsed = LogLevel::Info;
        EXPECT_TRUE(parseLogLevel(logLevelName(level), &parsed));
        EXPECT_EQ(parsed, level);
    }
}

TEST(LogLevel, ParsesDigitsAndRejectsGarbage)
{
    LogLevel level = LogLevel::Info;
    EXPECT_TRUE(parseLogLevel("0", &level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(parseLogLevel("3", &level));
    EXPECT_EQ(level, LogLevel::Error);
    level = LogLevel::Warn;
    EXPECT_FALSE(parseLogLevel("loud", &level));
    EXPECT_FALSE(parseLogLevel("", &level));
    EXPECT_FALSE(parseLogLevel("7", &level));
    EXPECT_EQ(level, LogLevel::Warn); // untouched on failure
}

// ----------------------------------------------------------- environment

TEST(LogConfig, FromEnvironmentReadsAllKnobs)
{
    setenv("DRS_LOG", "/tmp/events.jsonl", 1);
    setenv("DRS_LOG_LEVEL", "debug", 1);
    setenv("DRS_LOG_STDERR", "off", 1);
    setenv("DRS_LOG_RATE", "0", 1);
    const LogConfig config = LogConfig::fromEnvironment();
    unsetenv("DRS_LOG");
    unsetenv("DRS_LOG_LEVEL");
    unsetenv("DRS_LOG_STDERR");
    unsetenv("DRS_LOG_RATE");
    EXPECT_EQ(config.path, "/tmp/events.jsonl");
    EXPECT_EQ(config.level, LogLevel::Debug);
    EXPECT_EQ(config.stderrLevel, LogLevel::Off);
    EXPECT_EQ(config.maxEventsPerWindow, 0);
}

TEST(LogConfig, MalformedValuesKeepDefaults)
{
    setenv("DRS_LOG_LEVEL", "shouty", 1);
    setenv("DRS_LOG_RATE", "-5", 1);
    const LogConfig config = LogConfig::fromEnvironment();
    unsetenv("DRS_LOG_LEVEL");
    unsetenv("DRS_LOG_RATE");
    const LogConfig defaults;
    EXPECT_EQ(config.level, defaults.level);
    EXPECT_EQ(config.maxEventsPerWindow, defaults.maxEventsPerWindow);
}

// -------------------------------------------------------------- emission

TEST(EventLog, WritesParseableJsonlRecords)
{
    const std::string path = tempPath("events");
    LogConfig config;
    config.path = path;
    config.level = LogLevel::Debug;
    config.stderrLevel = LogLevel::Off;
    EventLog log(config);
    ASSERT_TRUE(log.fileOpen());

    Json data = Json::object();
    data["worker"] = 3;
    data["reason"] = "test";
    data["failed"] = false;
    log.log(LogLevel::Info, "fleet", "spawn", std::move(data));
    log.log(LogLevel::Error, "sweep", "attempt_failed");
    log.close();

    const std::vector<Json> records = readJsonl(path);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(log.emitted(), 2u);

    const Json &first = records[0];
    EXPECT_EQ(first.find("pid")->asUint(),
              static_cast<std::uint64_t>(::getpid()));
    EXPECT_EQ(first.find("level")->asString(), "info");
    EXPECT_EQ(first.find("subsystem")->asString(), "fleet");
    EXPECT_EQ(first.find("event")->asString(), "spawn");
    const Json *payload = first.find("data");
    ASSERT_NE(payload, nullptr);
    EXPECT_EQ(payload->find("worker")->asUint(), 3u);
    EXPECT_EQ(payload->find("reason")->asString(), "test");
    EXPECT_FALSE(payload->find("failed")->asBool());

    // Monotonic timebase: record order == timestamp order.
    EXPECT_LE(records[0].find("ts_us")->asUint(),
              records[1].find("ts_us")->asUint());
    EXPECT_EQ(records[1].find("level")->asString(), "error");
    std::remove(path.c_str());
}

TEST(EventLog, FileSinkFiltersBelowThreshold)
{
    const std::string path = tempPath("filtered");
    LogConfig config;
    config.path = path;
    config.level = LogLevel::Warn;
    config.stderrLevel = LogLevel::Off;
    EventLog log(config);

    EXPECT_FALSE(log.wouldLog(LogLevel::Debug));
    EXPECT_FALSE(log.wouldLog(LogLevel::Info));
    EXPECT_TRUE(log.wouldLog(LogLevel::Warn));

    log.log(LogLevel::Debug, "fleet", "claim");
    log.log(LogLevel::Info, "fleet", "dispatch");
    log.log(LogLevel::Warn, "fleet", "worker_death");
    log.log(LogLevel::Error, "fleet", "spawn_failed");
    log.close();

    const std::vector<Json> records = readJsonl(path);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].find("event")->asString(), "worker_death");
    EXPECT_EQ(records[1].find("event")->asString(), "spawn_failed");
    std::remove(path.c_str());
}

TEST(EventLog, RateLimiterSuppressesPerEventAndSummarizes)
{
    const std::string path = tempPath("ratelimited");
    LogConfig config;
    config.path = path;
    config.level = LogLevel::Debug;
    config.stderrLevel = LogLevel::Off;
    config.maxEventsPerWindow = 2;
    config.rateWindowSeconds = 0.05;
    EventLog log(config);

    for (int i = 0; i < 5; ++i)
        log.log(LogLevel::Info, "fleet", "heartbeat");
    // A different (subsystem, event) has its own budget.
    log.log(LogLevel::Info, "fleet", "dispatch");
    EXPECT_EQ(log.suppressed(), 3u);

    // Window rollover reports the suppressed tally as a summary event.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    log.log(LogLevel::Info, "fleet", "heartbeat");
    log.close();

    const std::vector<Json> records = readJsonl(path);
    std::size_t heartbeats = 0;
    std::uint64_t reportedSuppressed = 0;
    for (const Json &record : records) {
        const std::string subsystem = record.find("subsystem")->asString();
        const std::string event = record.find("event")->asString();
        if (subsystem == "fleet" && event == "heartbeat")
            ++heartbeats;
        if (subsystem == "log" && event == "rate_limited")
            reportedSuppressed +=
                record.find("data")->find("suppressed")->asUint();
    }
    EXPECT_EQ(heartbeats, 3u); // 2 in the first window + 1 after rollover
    EXPECT_EQ(reportedSuppressed, 3u);
    std::remove(path.c_str());
}

TEST(EventLog, GlobalInstanceIsASingleton)
{
    EXPECT_EQ(&EventLog::global(), &EventLog::global());
}

// --------------------------------------------------- trace ring overflow

TEST(TraceRingOverflow, DroppedEventsSurfaceInTraceAndReport)
{
    harness::ExperimentScale scale;
    scale.sceneScale = 0.15f;
    scale.width = 128;
    scale.height = 96;
    scale.samplesPerPixel = 1;
    scale.raysPerBounce = 4096;
    scale.numSmx = 2;
    const harness::PreparedScene prepared =
        harness::prepareScene(scene::SceneId::Conference, scale);

    const std::string path = tempPath("overflow.trace");
    harness::RunObservations observations;
    harness::RunConfig config;
    config.gpu.numSmx = 2;
    config.trace.enabled = true;
    config.trace.path = path;
    config.trace.capacity = 64; // tiny on purpose: must wrap
    config.observationsOut = &observations;

    const simt::SimStats stats =
        harness::runBatch(harness::Arch::Drs, *prepared.tracer,
                          prepared.trace.bounce(1).rays, config);
    EXPECT_GT(stats.raysTraced, 0u);
    EXPECT_TRUE(observations.traced);
    EXPECT_GT(observations.traceRecorded, observations.traceDropped);
    ASSERT_GT(observations.traceDropped, 0u) << "ring did not overflow";

    // 1. The Chrome trace carries the loss in its counter track and
    //    footer metadata.
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string parseError;
    const auto trace = Json::parse(buffer.str(), &parseError);
    ASSERT_TRUE(trace.has_value()) << parseError;
    EXPECT_GT(trace->find("otherData")->find("dropped_events")->asUint(),
              0u);
    std::uint64_t counterDropped = 0;
    for (const Json &event : trace->find("traceEvents")->asArray()) {
        const Json *name = event.find("name");
        if (event.find("ph")->asString() == "C" && name != nullptr &&
            name->asString() == "ring_dropped")
            counterDropped += event.find("args")->find("dropped")->asUint();
    }
    EXPECT_EQ(counterDropped, observations.traceDropped);

    // 2. The bench-report row carries the same counters ("trace"
    //    section, schema v4) and the document still validates.
    BenchReport report("overflow_test");
    Json &row = report.addResult();
    row = harness::statsJson(stats, 0.98);
    row["scene"] = "conference";
    row["arch"] = "drs";
    harness::addObservationsJson(row, observations, stats);
    const Json *section = row.find("trace");
    ASSERT_NE(section, nullptr);
    EXPECT_EQ(section->find("recorded")->asUint(),
              observations.traceRecorded);
    EXPECT_EQ(section->find("ring_dropped")->asUint(),
              observations.traceDropped);
    EXPECT_EQ(validateBenchReport(report.document()), "");
    std::remove(path.c_str());
}

} // namespace
} // namespace drs::obs
