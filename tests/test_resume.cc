/**
 * @file
 * Crash-resilient sweep execution tests: the lossless SimStats JSON
 * round trip backing the journal, journal write/replay, corrupt-tail
 * tolerance, retry + quarantine (jobs are reported, never dropped), and
 * the headline resume contract — an interrupted sweep resumed from its
 * journal merges to results identical to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/report.h"
#include "harness/sweep.h"

namespace drs::harness {
namespace {

ExperimentScale
tinyScale()
{
    ExperimentScale scale;
    scale.sceneScale = 0.05f;
    scale.width = 128;
    scale.height = 96;
    scale.samplesPerPixel = 1;
    scale.raysPerBounce = 4096;
    scale.numSmx = 2;
    scale.maxDepth = 3;
    return scale;
}

std::vector<SweepJob>
tinyJobs()
{
    std::vector<SweepJob> jobs;
    for (int bounce = 1; bounce <= 3; ++bounce) {
        SweepJob job;
        job.scene = scene::SceneId::Conference;
        job.arch = bounce == 2 ? Arch::Drs : Arch::Aila;
        job.config.gpu.numSmx = 2;
        job.bounce = bounce;
        job.maxRays = 192;
        jobs.push_back(job);
    }
    return jobs;
}

std::vector<SweepResult>
runSweep(const SweepOptions &options, int workers = 1)
{
    SweepRunner runner(tinyScale(), workers, options);
    for (const SweepJob &job : tinyJobs())
        runner.add(job);
    return runner.run();
}

/** Result equality that ignores wall-clock and provenance fields. */
void
expectSameOutcome(const std::vector<SweepResult> &a,
                  const std::vector<SweepResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].ran, b[i].ran) << "job " << i;
        EXPECT_EQ(a[i].failed, b[i].failed) << "job " << i;
        EXPECT_TRUE(a[i].stats == b[i].stats) << "job " << i;
    }
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

// --------------------------------------------- Lossless stats JSON

TEST(StatsJson, FullRoundTripIsLossless)
{
    simt::SimStats stats;
    stats.cycles = 123456789;
    stats.raysTraced = 4096;
    for (int i = 0; i <= 32; ++i)
        stats.histogram.recordInstruction(i, i % 7 == 0);
    stats.rdctrlIssued = 11;
    stats.rdctrlStalledIssues = 5;
    stats.rdctrlStallCycles = 77;
    stats.rfAccessesNormal = 1000;
    stats.rfAccessesShuffle = 500;
    stats.raySwapsCompleted = 42;
    stats.raySwapCycles = 420;
    stats.spawnBankConflictCycles = 13;
    stats.blockIssue = {{100, 3200}, {50, 801}, {0, 0}};
    stats.l1Data = {1000, 100};
    stats.l1Texture = {2000, 50};
    stats.l2 = {150, 75};
    stats.counters.add("fault.swap_bit_flips", 3);
    stats.counters.add("smx0.warp.retired", 17);

    const simt::SimStats restored =
        statsFromJson(statsJsonFull(stats));
    EXPECT_TRUE(stats == restored);

    // Survives serialization to text and back (the journal's path).
    const std::string text = statsJsonFull(stats).dump();
    const auto parsed = obs::Json::parse(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(stats == statsFromJson(*parsed));
}

TEST(StatsJson, RejectsMalformedDocuments)
{
    EXPECT_THROW(statsFromJson(obs::Json()), std::runtime_error);
    obs::Json missing = obs::Json::object();
    missing["cycles"] = 1;
    EXPECT_THROW(statsFromJson(missing), std::runtime_error);
}

// ----------------------------------------------------------- Job keys

TEST(SweepRunner, JobKeyIdentifiesTheCell)
{
    SweepJob job;
    job.scene = scene::SceneId::Conference;
    job.arch = Arch::Drs;
    job.bounce = 2;
    job.maxRays = 192;
    const std::string key = SweepRunner::jobKey(job);
    EXPECT_NE(key.find("conference"), std::string::npos);
    EXPECT_NE(key.find("drs"), std::string::npos);
    EXPECT_NE(key.find("b2"), std::string::npos);
    EXPECT_NE(key.find("r192"), std::string::npos);

    SweepJob other = job;
    other.bounce = 3;
    EXPECT_NE(SweepRunner::jobKey(other), key);
}

TEST(SweepOptions, FromEnvironmentParsesKnobs)
{
    ::setenv("DRS_JOB_TIMEOUT", "2.5", 1);
    ::setenv("DRS_CRASH_AFTER", "3", 1);
    SweepOptions options = SweepOptions::fromEnvironment();
    EXPECT_DOUBLE_EQ(options.jobTimeoutSeconds, 2.5);
    EXPECT_EQ(options.crashAfter, 3);

    ::setenv("DRS_JOB_TIMEOUT", "never", 1);
    ::setenv("DRS_CRASH_AFTER", "-1", 1);
    options = SweepOptions::fromEnvironment();
    EXPECT_DOUBLE_EQ(options.jobTimeoutSeconds, 0.0);
    EXPECT_EQ(options.crashAfter, 0);

    ::unsetenv("DRS_JOB_TIMEOUT");
    ::unsetenv("DRS_CRASH_AFTER");
}

// ------------------------------------------------- Journal + resume

TEST(SweepResume, FullJournalReplaysEveryJob)
{
    const std::string journal = tempPath("full_journal.jsonl");
    SweepOptions options;
    options.journalPath = journal;
    const auto reference = runSweep(options);
    for (const SweepResult &result : reference)
        EXPECT_FALSE(result.fromJournal);

    SweepOptions resume = options;
    resume.resume = true;
    const auto replayed = runSweep(resume);
    for (const SweepResult &result : replayed)
        EXPECT_TRUE(result.fromJournal) << "nothing should re-run";
    expectSameOutcome(reference, replayed);
    std::remove(journal.c_str());
}

TEST(SweepResume, PartialJournalMergesToUninterruptedResults)
{
    // Reference: an uninterrupted run with no journal at all.
    const auto reference = runSweep(SweepOptions{});

    // Simulate a crash: keep only the journal's first line, then append
    // the torn half-written line a kill mid-append would leave behind.
    const std::string journal = tempPath("partial_journal.jsonl");
    SweepOptions options;
    options.journalPath = journal;
    runSweep(options);

    std::string first_line;
    {
        std::ifstream in(journal);
        ASSERT_TRUE(std::getline(in, first_line));
    }
    {
        std::ofstream out(journal, std::ios::trunc);
        out << first_line << "\n";
        out << "{\"job\": 1, \"key\": \"conference/"; // torn write
    }

    SweepOptions resume = options;
    resume.resume = true;
    const auto merged = runSweep(resume);
    int replayed = 0;
    for (const SweepResult &result : merged)
        replayed += result.fromJournal ? 1 : 0;
    EXPECT_EQ(replayed, 1) << "only the intact journal line replays";
    expectSameOutcome(reference, merged);
    std::remove(journal.c_str());
}

TEST(SweepResume, MismatchedKeyIsRejected)
{
    const std::string journal = tempPath("mismatch_journal.jsonl");
    SweepOptions options;
    options.journalPath = journal;
    runSweep(options);

    // Same journal, different sweep: every key differs, nothing replays.
    SweepOptions resume = options;
    resume.resume = true;
    SweepRunner runner(tinyScale(), 1, resume);
    for (SweepJob job : tinyJobs()) {
        job.maxRays = 64; // different cell identity
        runner.add(job);
    }
    const auto results = runner.run();
    for (const SweepResult &result : results) {
        EXPECT_FALSE(result.fromJournal);
        EXPECT_TRUE(result.ran);
    }
    std::remove(journal.c_str());
}

TEST(SweepResume, ParallelSweepWritesAReplayableJournal)
{
    const std::string journal = tempPath("parallel_journal.jsonl");
    SweepOptions options;
    options.journalPath = journal;
    const auto reference = runSweep(options, /*workers=*/3);

    SweepOptions resume = options;
    resume.resume = true;
    const auto replayed = runSweep(resume);
    for (const SweepResult &result : replayed)
        EXPECT_TRUE(result.fromJournal);
    expectSameOutcome(reference, replayed);
    std::remove(journal.c_str());
}

// --------------------------------------------- Retry and quarantine

TEST(SweepQuarantine, ExhaustedRetriesAreReportedNeverDropped)
{
    SweepOptions options;
    // A 1-cycle no-progress budget fails every simulation immediately
    // and deterministically.
    options.watchdogCycles = 1;
    options.maxAttempts = 2;
    options.backoffSeconds = 0.0;
    const auto results = runSweep(options);

    ASSERT_EQ(results.size(), tinyJobs().size());
    for (const SweepResult &result : results) {
        EXPECT_FALSE(result.ran);
        EXPECT_TRUE(result.failed) << "quarantined, not dropped";
        EXPECT_EQ(result.attempts, 2);
        EXPECT_NE(result.error.find("watchdog"), std::string::npos)
            << result.error;
    }
}

TEST(SweepQuarantine, QuarantinedJobsAreJournaledAndReplayed)
{
    const std::string journal = tempPath("quarantine_journal.jsonl");
    SweepOptions options;
    options.watchdogCycles = 1;
    options.maxAttempts = 1;
    options.backoffSeconds = 0.0;
    options.journalPath = journal;
    const auto first = runSweep(options);

    SweepOptions resume = options;
    resume.resume = true;
    const auto replayed = runSweep(resume);
    for (const SweepResult &result : replayed) {
        EXPECT_TRUE(result.fromJournal)
            << "failures are journaled too, so resume must not retry "
               "them endlessly";
        EXPECT_TRUE(result.failed);
        EXPECT_FALSE(result.error.empty());
    }
    expectSameOutcome(first, replayed);
    std::remove(journal.c_str());
}

TEST(SweepRetry, FaultSeedsDifferPerAttemptAndPerJob)
{
    SweepOptions options;
    options.fault.seed = 0x1234ULL;
    // Disable the actual fault hooks so the runs stay clean; the seeds
    // are still derived and recorded per job.
    options.fault.swapBitFlipRate = 0.0;
    options.fault.cacheTagFlipRate = 0.0;
    options.fault.dramDelayRate = 0.0;
    options.fault.dramDropRate = 0.0;
    const auto results = runSweep(options);

    ASSERT_GE(results.size(), 2u);
    for (const SweepResult &result : results) {
        EXPECT_TRUE(result.ran);
        EXPECT_EQ(result.attempts, 1);
        EXPECT_NE(result.faultSeed, 0u);
    }
    EXPECT_NE(results[0].faultSeed, results[1].faultSeed);
    EXPECT_EQ(results[0].faultSeed, fault::mixSeed(0x1234ULL, 0, 1));
}

TEST(SweepFaults, SweepResultsDeterministicAcrossWorkerCounts)
{
    SweepOptions options;
    options.fault.seed = 0xbeefULL;
    const auto sequential = runSweep(options, /*workers=*/1);
    const auto parallel = runSweep(options, /*workers=*/3);
    expectSameOutcome(sequential, parallel);
    for (std::size_t i = 0; i < sequential.size(); ++i)
        EXPECT_EQ(sequential[i].faultSeed, parallel[i].faultSeed);
}

} // namespace
} // namespace drs::harness
