/**
 * @file
 * Counter-consistency tests for the observability layer: the per-SMX
 * counter registries must sum exactly to the aggregate SimStats snapshot
 * under every execution mode (sequential, concurrent SMX stepping,
 * concurrent sweep jobs), the snapshot must agree with the legacy scalar
 * SimStats fields it mirrors, and turning the cycle tracer on must not
 * change a single statistic.
 */

#include <cstdio>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "harness/harness.h"
#include "harness/sweep.h"
#include "obs/json.h"

namespace drs::harness {
namespace {

ExperimentScale
testScale()
{
    ExperimentScale scale;
    scale.sceneScale = 0.15f;
    scale.width = 128;
    scale.height = 96;
    scale.samplesPerPixel = 1;
    scale.raysPerBounce = 4096;
    scale.numSmx = 4; // > 1 so per-SMX sums are a real statement
    return scale;
}

const std::vector<Arch> kAllArchs = {Arch::Aila, Arch::Drs, Arch::Dmk,
                                     Arch::Tbc};

/** GPU-level counters added after the per-SMX merge (shared L2). */
bool
isGpuLevelCounter(std::string_view name)
{
    return name.substr(0, 3) == "l2.";
}

class CountersFixture : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        prepared_ = new PreparedScene(
            prepareScene(scene::SceneId::Conference, testScale()));
    }

    static void TearDownTestSuite()
    {
        delete prepared_;
        prepared_ = nullptr;
    }

    static RunConfig makeConfig(int smx_threads = 1)
    {
        RunConfig config;
        config.gpu.numSmx = testScale().numSmx;
        config.smxThreads = smx_threads;
        return config;
    }

    static std::span<const geom::Ray> rays()
    {
        return prepared_->trace.bounce(2).rays;
    }

    static PreparedScene *prepared_;
};

PreparedScene *CountersFixture::prepared_ = nullptr;

/**
 * Check that the merged per-SMX snapshots reproduce the aggregate
 * exactly: same names, same values, with only the GPU-level l2.* entries
 * allowed on top.
 */
void
expectPerSmxSumsMatchAggregate(const simt::SimStats &aggregate,
                               const std::vector<simt::SimStats> &per_smx,
                               const std::string &context)
{
    obs::CounterSnapshot merged;
    for (const auto &stats : per_smx)
        merged.merge(stats.counters);

    for (const auto &[name, value] : aggregate.counters.entries()) {
        if (isGpuLevelCounter(name))
            continue;
        EXPECT_TRUE(merged.contains(name))
            << context << ": aggregate counter \"" << name
            << "\" missing from the per-SMX registries";
        EXPECT_EQ(merged.value(name), value)
            << context << ": per-SMX sums diverge on \"" << name << '"';
    }
    for (const auto &[name, value] : merged.entries())
        EXPECT_EQ(aggregate.counters.value(name), value)
            << context << ": per-SMX counter \"" << name
            << "\" lost in the aggregate";

    // The GPU-level entries mirror the shared L2 model.
    EXPECT_EQ(aggregate.counters.value("l2.access"), aggregate.l2.accesses)
        << context;
    EXPECT_EQ(aggregate.counters.value("l2.miss"), aggregate.l2.misses)
        << context;
}

TEST_F(CountersFixture, PerSmxCountersSumToAggregate)
{
    for (const Arch arch : kAllArchs) {
        for (const int smx_threads : {1, 4}) {
            RunConfig config = makeConfig(smx_threads);
            std::vector<simt::SimStats> per_smx;
            config.perSmxStats = [&](int smx_index,
                                     const simt::SimStats &stats) {
                EXPECT_EQ(smx_index, static_cast<int>(per_smx.size()))
                    << "per-SMX hook out of SMX-index order";
                per_smx.push_back(stats);
            };
            const auto aggregate =
                runBatch(arch, *prepared_->tracer, rays(), config);
            ASSERT_EQ(per_smx.size(),
                      static_cast<std::size_t>(testScale().numSmx));
            EXPECT_FALSE(aggregate.counters.empty());
            expectPerSmxSumsMatchAggregate(
                aggregate, per_smx,
                archName(arch) + " smxThreads=" +
                    std::to_string(smx_threads));
        }
    }
}

TEST_F(CountersFixture, PerSmxSumsHoldUnderConcurrentSweeps)
{
    for (const int jobs : {1, 4}) {
        SweepRunner runner(testScale(), jobs);
        // One accumulator per job; deque keeps addresses stable for the
        // perSmxStats lambdas while jobs run concurrently.
        std::deque<std::vector<simt::SimStats>> accumulators;
        std::vector<std::size_t> indices;
        for (const Arch arch : kAllArchs) {
            auto &per_smx = accumulators.emplace_back();
            SweepJob job;
            job.scene = scene::SceneId::Conference;
            job.arch = arch;
            job.bounce = 2;
            job.config = makeConfig();
            job.config.perSmxStats =
                [&per_smx](int, const simt::SimStats &stats) {
                    per_smx.push_back(stats);
                };
            indices.push_back(runner.add(job));
        }
        const auto results = runner.run();
        for (std::size_t a = 0; a < kAllArchs.size(); ++a) {
            ASSERT_TRUE(results[indices[a]].ran);
            expectPerSmxSumsMatchAggregate(
                results[indices[a]].stats, accumulators[a],
                archName(kAllArchs[a]) + " jobs=" + std::to_string(jobs));
        }
    }
}

TEST_F(CountersFixture, SnapshotAgreesWithScalarStatsFields)
{
    // The counters are the new source of truth; the legacy scalar fields
    // must stay in lockstep so nothing the figures report can drift.
    const auto drs =
        runBatch(Arch::Drs, *prepared_->tracer, rays(), makeConfig());
    const auto &c = drs.counters;
    EXPECT_EQ(c.value("smx.rdctrl.issued"), drs.rdctrlIssued);
    EXPECT_EQ(c.value("smx.rdctrl.stalled_issues"), drs.rdctrlStalledIssues);
    EXPECT_EQ(c.value("smx.rdctrl.stall_cycles"), drs.rdctrlStallCycles);
    EXPECT_EQ(c.value("smx.rf.normal_accesses"), drs.rfAccessesNormal);
    EXPECT_EQ(c.value("smx.rf.shuffle_accesses"), drs.rfAccessesShuffle);
    EXPECT_EQ(c.value("smx.swap.completed"), drs.raySwapsCompleted);
    EXPECT_EQ(c.value("smx.swap.cycles"), drs.raySwapCycles);
    EXPECT_EQ(c.value("l1d.access"), drs.l1Data.accesses);
    EXPECT_EQ(c.value("l1d.miss"), drs.l1Data.misses);
    EXPECT_EQ(c.value("l1t.access"), drs.l1Texture.accesses);
    EXPECT_EQ(c.value("l1t.miss"), drs.l1Texture.misses);
    // DRS hardware activity visible under its own prefix.
    EXPECT_GT(c.value("drs.swaps"), 0u);
    EXPECT_GT(c.value("drs.moves") + c.value("drs.exchanges"), 0u);

    const auto dmk =
        runBatch(Arch::Dmk, *prepared_->tracer, rays(), makeConfig());
    EXPECT_EQ(dmk.counters.value("smx.spawn.conflict_cycles"),
              dmk.spawnBankConflictCycles);
    EXPECT_GT(dmk.counters.value("dmk.spawns"), 0u);

    const auto tbc =
        runBatch(Arch::Tbc, *prepared_->tracer, rays(), makeConfig());
    EXPECT_EQ(tbc.counters.value("smx.rf.normal_accesses"),
              tbc.rfAccessesNormal);
    EXPECT_TRUE(tbc.counters.contains("tbc.sync_stall_cycles"));
}

TEST_F(CountersFixture, TracerDoesNotAlterStatistics)
{
    for (const Arch arch : kAllArchs) {
        const auto baseline =
            runBatch(arch, *prepared_->tracer, rays(), makeConfig());

        RunConfig traced_config = makeConfig();
        traced_config.trace.enabled = true;
        traced_config.trace.capacity = 4096;
        traced_config.trace.path = ::testing::TempDir() + "trace_" +
                                   archName(arch) + ".json";
        const auto traced =
            runBatch(arch, *prepared_->tracer, rays(), traced_config);

        EXPECT_EQ(baseline, traced)
            << archName(arch) << ": tracing changed the statistics";

        if (arch == Arch::Tbc)
            continue; // self-contained executor; no warp-level tracer
        std::string text;
        {
            std::FILE *file =
                std::fopen(traced_config.trace.path.c_str(), "rb");
            ASSERT_NE(file, nullptr)
                << archName(arch) << ": no trace written to "
                << traced_config.trace.path;
            char buffer[4096];
            std::size_t n;
            while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0)
                text.append(buffer, n);
            std::fclose(file);
        }
        std::string error;
        const auto doc = obs::Json::parse(text, &error);
        ASSERT_TRUE(doc.has_value())
            << archName(arch) << ": trace is not valid JSON: " << error;
        const obs::Json *events = doc->find("traceEvents");
        ASSERT_NE(events, nullptr) << archName(arch);
        EXPECT_GT(events->size(), 0u)
            << archName(arch) << ": trace contains no events";
        std::remove(traced_config.trace.path.c_str());
    }
}

TEST_F(CountersFixture, ParallelEnginesKeepCountersBitIdentical)
{
    // SimStats::operator== already covers the snapshot, but spell the
    // counter comparison out so a failure names the counter, not just
    // "stats differ".
    for (const Arch arch : kAllArchs) {
        const auto sequential =
            runBatch(arch, *prepared_->tracer, rays(), makeConfig(1));
        const auto parallel =
            runBatch(arch, *prepared_->tracer, rays(), makeConfig(4));
        ASSERT_EQ(sequential.counters.entries().size(),
                  parallel.counters.entries().size())
            << archName(arch);
        for (const auto &[name, value] : sequential.counters.entries())
            EXPECT_EQ(parallel.counters.value(name), value)
                << archName(arch) << ": counter \"" << name
                << "\" depends on the thread count";
    }
}

} // namespace
} // namespace drs::harness
