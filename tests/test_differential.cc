/**
 * @file
 * Differential tests: every registered architecture (the paper's four
 * plus the software reordering survey entries) runs different kernels,
 * ray-management hardware or batch permutations, but they trace the same
 * rays through the same BVH — so every ray must report the same
 * intersection. For each paper scene the Aila software baseline is the
 * reference; hardware architectures must match it per ray on the hit
 * triangle id and on the hit distance within 1e-5, and the software
 * reorderers ("reorder" counter namespace) must match it exactly — they
 * run the very same kernel over a permuted batch, so any deviation means
 * the hit scatter-back is broken.
 */

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/arch_plugin.h"
#include "harness/harness.h"

namespace drs::harness {
namespace {

ExperimentScale
testScale()
{
    ExperimentScale scale;
    scale.sceneScale = 0.15f;
    scale.width = 128;
    scale.height = 96;
    scale.samplesPerPixel = 1;
    scale.raysPerBounce = 4096;
    scale.numSmx = 2;
    return scale;
}

constexpr float kHitDistanceTolerance = 1e-5f;

std::vector<geom::Hit>
traceHits(Arch arch, const PreparedScene &prepared,
          std::span<const geom::Ray> rays)
{
    std::vector<geom::Hit> hits;
    RunConfig config;
    config.gpu.numSmx = testScale().numSmx;
    config.hitsOut = &hits;
    const auto stats = runBatch(arch, *prepared.tracer, rays, config);
    EXPECT_EQ(stats.raysTraced, rays.size()) << archName(arch);
    return hits;
}

class DifferentialTest : public ::testing::TestWithParam<scene::SceneId>
{
};

TEST_P(DifferentialTest, AllArchitecturesAgreeOnEveryHit)
{
    const PreparedScene prepared = prepareScene(GetParam(), testScale());
    // The incoherent second bounce is where the architectures diverge in
    // execution order the most; agreement there is the strong statement.
    const auto &rays = prepared.trace.bounce(2).rays;
    ASSERT_FALSE(rays.empty());

    const auto reference = traceHits(Arch::Aila, prepared, rays);
    ASSERT_EQ(reference.size(), rays.size());

    for (const ArchPlugin *plugin : ArchRegistry::instance().plugins()) {
        const Arch arch(plugin->name());
        if (arch == Arch::Aila)
            continue;
        // The software reorderers run the identical while-while kernel
        // over a permuted batch, ser leaves traversal untouched, and
        // pathpred's probe only ever shrinks tMax past a genuine hit:
        // all three must match bitwise, not merely within tolerance.
        const std::string ns = plugin->counterNamespace();
        const float tolerance =
            (ns == "reorder" || ns == "ser" || ns == "pathpred")
                ? 0.0f
                : kHitDistanceTolerance;
        const auto hits = traceHits(arch, prepared, rays);
        ASSERT_EQ(hits.size(), reference.size()) << archName(arch);

        std::size_t mismatches = 0;
        for (std::size_t i = 0; i < hits.size(); ++i) {
            const bool triangle_differs =
                hits[i].triangle != reference[i].triangle;
            const bool distance_differs =
                reference[i].valid() &&
                std::fabs(hits[i].t - reference[i].t) > tolerance;
            if (triangle_differs || distance_differs) {
                if (++mismatches <= 5)
                    ADD_FAILURE()
                        << archName(arch) << " ray " << i << ": triangle "
                        << hits[i].triangle << " vs " << reference[i].triangle
                        << ", t " << hits[i].t << " vs " << reference[i].t;
            }
        }
        EXPECT_EQ(mismatches, 0u)
            << archName(arch) << " disagreed with aila on " << mismatches
            << " of " << hits.size() << " rays";
    }
}

TEST_P(DifferentialTest, ReferenceFindsRealIntersections)
{
    // Guard the guard: an all-miss reference would make the differential
    // comparison vacuously green.
    const PreparedScene prepared = prepareScene(GetParam(), testScale());
    const auto &rays = prepared.trace.bounce(2).rays;
    const auto reference = traceHits(Arch::Aila, prepared, rays);
    std::size_t valid = 0;
    for (const auto &hit : reference)
        valid += hit.valid() ? 1 : 0;
    EXPECT_GT(valid, reference.size() / 4)
        << "suspiciously few real hits in the reference";
}

TEST_P(DifferentialTest, CheckedRunsMatchUncheckedAtAllThreadCounts)
{
    // Invariant checking (RunConfig::check / DRS_CHECK=1) must be a pure
    // observer: for every architecture, checked runs at any combination
    // of concurrent batch jobs and SMX worker threads produce SimStats
    // bit-identical to the unchecked sequential run — and the checks
    // themselves (cycle-level invariants + lockstep reference
    // cross-check) must find nothing to throw about.
    const PreparedScene prepared = prepareScene(GetParam(), testScale());
    const auto &bounce_rays = prepared.trace.bounce(2).rays;
    ASSERT_FALSE(bounce_rays.empty());
    std::span<const geom::Ray> rays(bounce_rays);
    if (rays.size() > 1024)
        rays = rays.first(1024); // keep the all-arch grid affordable

    for (const Arch arch : ArchRegistry::instance().archs()) {
        RunConfig config;
        config.gpu.numSmx = testScale().numSmx;
        config.check = 0;
        config.smxThreads = 1;
        const simt::SimStats baseline =
            runBatch(arch, *prepared.tracer, rays, config);

        for (const int jobs : {1, 4}) {
            for (const int smx_threads : {1, 4}) {
                std::vector<simt::SimStats> results(
                    static_cast<std::size_t>(jobs));
                std::vector<std::string> errors(
                    static_cast<std::size_t>(jobs));
                auto run_one = [&](std::size_t slot) {
                    try {
                        RunConfig checked = config;
                        checked.check = 1;
                        checked.smxThreads = smx_threads;
                        results[slot] = runBatch(arch, *prepared.tracer,
                                                 rays, checked);
                    } catch (const std::exception &e) {
                        errors[slot] = e.what();
                    }
                };
                if (jobs == 1) {
                    run_one(0);
                } else {
                    std::vector<std::thread> workers;
                    for (std::size_t j = 0;
                         j < static_cast<std::size_t>(jobs); ++j)
                        workers.emplace_back(run_one, j);
                    for (auto &worker : workers)
                        worker.join();
                }
                for (std::size_t j = 0;
                     j < static_cast<std::size_t>(jobs); ++j) {
                    EXPECT_TRUE(errors[j].empty())
                        << archName(arch) << " jobs=" << jobs
                        << " smxThreads=" << smx_threads
                        << " job " << j << ": " << errors[j];
                    if (errors[j].empty()) {
                        EXPECT_TRUE(results[j] == baseline)
                            << archName(arch) << " jobs=" << jobs
                            << " smxThreads=" << smx_threads << " job "
                            << j
                            << ": checked SimStats differ from unchecked "
                               "sequential run";
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllScenes, DifferentialTest,
                         ::testing::ValuesIn(scene::allSceneIds()),
                         [](const auto &info) {
                             return scene::sceneName(info.param);
                         });

} // namespace
} // namespace drs::harness
