/**
 * @file
 * Differential tests: all four simulated architectures (Aila, DRS, DMK,
 * TBC) run different kernels and ray-management hardware, but they trace
 * the same rays through the same BVH — so every ray must report the same
 * intersection. For each paper scene the Aila software baseline is the
 * reference; the other three must match it per ray on the hit triangle id
 * and on the hit distance within 1e-5.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harness/harness.h"

namespace drs::harness {
namespace {

ExperimentScale
testScale()
{
    ExperimentScale scale;
    scale.sceneScale = 0.15f;
    scale.width = 128;
    scale.height = 96;
    scale.samplesPerPixel = 1;
    scale.raysPerBounce = 4096;
    scale.numSmx = 2;
    return scale;
}

constexpr float kHitDistanceTolerance = 1e-5f;

std::vector<geom::Hit>
traceHits(Arch arch, const PreparedScene &prepared,
          std::span<const geom::Ray> rays)
{
    std::vector<geom::Hit> hits;
    RunConfig config;
    config.gpu.numSmx = testScale().numSmx;
    config.hitsOut = &hits;
    const auto stats = runBatch(arch, *prepared.tracer, rays, config);
    EXPECT_EQ(stats.raysTraced, rays.size()) << archName(arch);
    return hits;
}

class DifferentialTest : public ::testing::TestWithParam<scene::SceneId>
{
};

TEST_P(DifferentialTest, AllArchitecturesAgreeOnEveryHit)
{
    const PreparedScene prepared = prepareScene(GetParam(), testScale());
    // The incoherent second bounce is where the architectures diverge in
    // execution order the most; agreement there is the strong statement.
    const auto &rays = prepared.trace.bounce(2).rays;
    ASSERT_FALSE(rays.empty());

    const auto reference = traceHits(Arch::Aila, prepared, rays);
    ASSERT_EQ(reference.size(), rays.size());

    for (const Arch arch : {Arch::Drs, Arch::Dmk, Arch::Tbc}) {
        const auto hits = traceHits(arch, prepared, rays);
        ASSERT_EQ(hits.size(), reference.size()) << archName(arch);

        std::size_t mismatches = 0;
        for (std::size_t i = 0; i < hits.size(); ++i) {
            const bool triangle_differs =
                hits[i].triangle != reference[i].triangle;
            const bool distance_differs =
                reference[i].valid() &&
                std::fabs(hits[i].t - reference[i].t) > kHitDistanceTolerance;
            if (triangle_differs || distance_differs) {
                if (++mismatches <= 5)
                    ADD_FAILURE()
                        << archName(arch) << " ray " << i << ": triangle "
                        << hits[i].triangle << " vs " << reference[i].triangle
                        << ", t " << hits[i].t << " vs " << reference[i].t;
            }
        }
        EXPECT_EQ(mismatches, 0u)
            << archName(arch) << " disagreed with aila on " << mismatches
            << " of " << hits.size() << " rays";
    }
}

TEST_P(DifferentialTest, ReferenceFindsRealIntersections)
{
    // Guard the guard: an all-miss reference would make the differential
    // comparison vacuously green.
    const PreparedScene prepared = prepareScene(GetParam(), testScale());
    const auto &rays = prepared.trace.bounce(2).rays;
    const auto reference = traceHits(Arch::Aila, prepared, rays);
    std::size_t valid = 0;
    for (const auto &hit : reference)
        valid += hit.valid() ? 1 : 0;
    EXPECT_GT(valid, reference.size() / 4)
        << "suspiciously few real hits in the reference";
}

INSTANTIATE_TEST_SUITE_P(AllScenes, DifferentialTest,
                         ::testing::ValuesIn(scene::allSceneIds()),
                         [](const auto &info) {
                             return scene::sceneName(info.param);
                         });

} // namespace
} // namespace drs::harness
