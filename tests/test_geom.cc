/**
 * @file
 * Unit tests for the geometry substrate: vectors, AABBs, triangle
 * intersection, RNG and low-discrepancy sampling.
 */

#include <cmath>
#include <numbers>
#include <set>

#include <gtest/gtest.h>

#include "geom/aabb.h"
#include "geom/ray.h"
#include "geom/rng.h"
#include "geom/sampler.h"
#include "geom/triangle.h"
#include "geom/vec.h"

namespace drs::geom {
namespace {

TEST(Vec3, BasicArithmetic)
{
    const Vec3 a{1, 2, 3};
    const Vec3 b{4, 5, 6};
    EXPECT_EQ(a + b, Vec3(5, 7, 9));
    EXPECT_EQ(b - a, Vec3(3, 3, 3));
    EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
    EXPECT_EQ(2.0f * a, Vec3(2, 4, 6));
    EXPECT_EQ(-a, Vec3(-1, -2, -3));
    EXPECT_EQ(a / 2.0f, Vec3(0.5f, 1.0f, 1.5f));
}

TEST(Vec3, DotAndCross)
{
    EXPECT_FLOAT_EQ(dot(Vec3(1, 2, 3), Vec3(4, 5, 6)), 32.0f);
    EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
    EXPECT_EQ(cross(Vec3(0, 1, 0), Vec3(1, 0, 0)), Vec3(0, 0, -1));
    // Cross product is perpendicular to both inputs.
    const Vec3 u{1.5f, -2.0f, 0.3f};
    const Vec3 v{0.2f, 4.0f, -1.0f};
    const Vec3 c = cross(u, v);
    EXPECT_NEAR(dot(c, u), 0.0f, 1e-5f);
    EXPECT_NEAR(dot(c, v), 0.0f, 1e-5f);
}

TEST(Vec3, NormalizeProducesUnitLength)
{
    const Vec3 v = normalize(Vec3{3, 4, 12});
    EXPECT_NEAR(length(v), 1.0f, 1e-6f);
    EXPECT_EQ(normalize(Vec3{}), Vec3{});
}

TEST(Vec3, MinMaxComponents)
{
    const Vec3 a{1, 5, 3};
    const Vec3 b{2, 4, 6};
    EXPECT_EQ(min(a, b), Vec3(1, 4, 3));
    EXPECT_EQ(max(a, b), Vec3(2, 5, 6));
    EXPECT_FLOAT_EQ(maxComponent(a), 5.0f);
    EXPECT_FLOAT_EQ(minComponent(a), 1.0f);
    EXPECT_EQ(maxDimension(Vec3(-9, 2, 3)), 0);
    EXPECT_EQ(maxDimension(Vec3(1, -2, 1.5f)), 1);
    EXPECT_EQ(maxDimension(Vec3(1, 2, -3)), 2);
}

TEST(Vec3, ReflectObeysLawOfReflection)
{
    const Vec3 d = normalize(Vec3{1, -1, 0});
    const Vec3 n{0, 1, 0};
    const Vec3 r = reflect(d, n);
    EXPECT_NEAR(r.x, d.x, 1e-6f);
    EXPECT_NEAR(r.y, -d.y, 1e-6f);
    EXPECT_NEAR(length(r), 1.0f, 1e-6f);
}

TEST(OrthonormalBasis, IsOrthonormal)
{
    for (const Vec3 &n : {Vec3{0, 0, 1}, Vec3{0, 0, -1},
                          normalize(Vec3{1, 2, 3}),
                          normalize(Vec3{-0.3f, 0.9f, -0.1f})}) {
        OrthonormalBasis onb(n);
        EXPECT_NEAR(length(onb.tangent), 1.0f, 1e-5f);
        EXPECT_NEAR(length(onb.bitangent), 1.0f, 1e-5f);
        EXPECT_NEAR(dot(onb.tangent, onb.bitangent), 0.0f, 1e-5f);
        EXPECT_NEAR(dot(onb.tangent, onb.normal), 0.0f, 1e-5f);
        EXPECT_NEAR(dot(onb.bitangent, onb.normal), 0.0f, 1e-5f);
        EXPECT_EQ(onb.toWorld(Vec3{0, 0, 1}), n);
    }
}

TEST(Aabb, EmptyByDefault)
{
    Aabb box;
    EXPECT_TRUE(box.empty());
    EXPECT_FLOAT_EQ(box.surfaceArea(), 0.0f);
}

TEST(Aabb, ExtendAndContain)
{
    Aabb box;
    box.extend(Vec3{0, 0, 0});
    box.extend(Vec3{1, 2, 3});
    EXPECT_FALSE(box.empty());
    EXPECT_TRUE(box.contains(Vec3{0.5f, 1.0f, 1.5f}));
    EXPECT_FALSE(box.contains(Vec3{1.5f, 1.0f, 1.5f}));
    EXPECT_EQ(box.center(), Vec3(0.5f, 1.0f, 1.5f));
    EXPECT_FLOAT_EQ(box.surfaceArea(), 2.0f * (2 + 6 + 3));
}

TEST(Aabb, MergeAndOverlap)
{
    Aabb a;
    a.extend(Vec3{0, 0, 0});
    a.extend(Vec3{1, 1, 1});
    Aabb b;
    b.extend(Vec3{2, 0, 0});
    b.extend(Vec3{3, 1, 1});
    EXPECT_FALSE(a.overlaps(b));
    const Aabb m = merge(a, b);
    EXPECT_TRUE(m.contains(Vec3{1.5f, 0.5f, 0.5f}));
    EXPECT_TRUE(m.overlaps(a));
}

TEST(Aabb, RaySlabHit)
{
    Aabb box;
    box.extend(Vec3{1, -1, -1});
    box.extend(Vec3{2, 1, 1});
    const Vec3 origin{0, 0, 0};
    const Vec3 inv{1.0f, std::numeric_limits<float>::infinity(),
                   std::numeric_limits<float>::infinity()};
    float t;
    EXPECT_TRUE(box.intersect(origin, inv, 0.0f, 100.0f, t));
    EXPECT_FLOAT_EQ(t, 1.0f);
}

TEST(Aabb, RaySlabMissAndInterval)
{
    Aabb box;
    box.extend(Vec3{1, -1, -1});
    box.extend(Vec3{2, 1, 1});
    float t;
    // Pointing away.
    EXPECT_FALSE(box.intersect(Vec3{0, 0, 0}, Vec3{-1, 1e9f, 1e9f}, 0.0f,
                               100.0f, t));
    // Interval too short (tMax before the box).
    EXPECT_FALSE(
        box.intersect(Vec3{0, 0, 0}, Vec3{1, 1e9f, 1e9f}, 0.0f, 0.5f, t));
    // Ray starting inside hits.
    EXPECT_TRUE(box.intersect(Vec3{1.5f, 0, 0}, Vec3{1, 1e9f, 1e9f}, 0.0f,
                              100.0f, t));
}

TEST(Triangle, HitInsideBarycentrics)
{
    const Triangle tri{{0, 0, 5}, {4, 0, 5}, {0, 4, 5}, 0};
    Ray ray;
    ray.origin = {1, 1, 0};
    ray.direction = {0, 0, 1};
    float t, u, v;
    ASSERT_TRUE(tri.intersect(ray, t, u, v));
    EXPECT_FLOAT_EQ(t, 5.0f);
    EXPECT_NEAR(u, 0.25f, 1e-5f);
    EXPECT_NEAR(v, 0.25f, 1e-5f);
}

TEST(Triangle, MissOutsideEdges)
{
    const Triangle tri{{0, 0, 5}, {4, 0, 5}, {0, 4, 5}, 0};
    Ray ray;
    ray.direction = {0, 0, 1};
    float t, u, v;
    ray.origin = {3, 3, 0}; // beyond the diagonal edge
    EXPECT_FALSE(tri.intersect(ray, t, u, v));
    ray.origin = {-1, 1, 0};
    EXPECT_FALSE(tri.intersect(ray, t, u, v));
    ray.origin = {1, -1, 0};
    EXPECT_FALSE(tri.intersect(ray, t, u, v));
}

TEST(Triangle, RespectsRayInterval)
{
    const Triangle tri{{0, 0, 5}, {4, 0, 5}, {0, 4, 5}, 0};
    Ray ray;
    ray.origin = {1, 1, 0};
    ray.direction = {0, 0, 1};
    ray.tMax = 4.0f; // hit at 5 is beyond tMax
    float t, u, v;
    EXPECT_FALSE(tri.intersect(ray, t, u, v));
    ray.tMax = kRayInfinity;
    ray.tMin = 6.0f; // hit at 5 is before tMin
    EXPECT_FALSE(tri.intersect(ray, t, u, v));
}

TEST(Triangle, TwoSided)
{
    const Triangle tri{{0, 0, 5}, {4, 0, 5}, {0, 4, 5}, 0};
    Ray ray;
    ray.origin = {1, 1, 10};
    ray.direction = {0, 0, -1};
    float t, u, v;
    EXPECT_TRUE(tri.intersect(ray, t, u, v));
    EXPECT_FLOAT_EQ(t, 5.0f);
}

TEST(Triangle, DegenerateRejected)
{
    const Triangle tri{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}, 0}; // collinear
    Ray ray;
    ray.origin = {0, 0, -1};
    ray.direction = {0, 0, 1};
    float t, u, v;
    EXPECT_FALSE(tri.intersect(ray, t, u, v));
    EXPECT_FLOAT_EQ(tri.area(), 0.0f);
}

TEST(Triangle, GeometryHelpers)
{
    const Triangle tri{{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, 3};
    EXPECT_FLOAT_EQ(tri.area(), 2.0f);
    EXPECT_EQ(tri.centroid(), Vec3(2.0f / 3, 2.0f / 3, 0));
    const Aabb b = tri.bounds();
    EXPECT_EQ(b.lo, Vec3(0, 0, 0));
    EXPECT_EQ(b.hi, Vec3(2, 2, 0));
}

TEST(Pcg32, DeterministicAndSeedSensitive)
{
    Pcg32 a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.nextUInt();
        EXPECT_EQ(va, b.nextUInt());
        (void)c.nextUInt();
    }
    Pcg32 a2(42), c2(43);
    EXPECT_NE(a2.nextUInt(), c2.nextUInt());
}

TEST(Pcg32, FloatRangeAndMean)
{
    Pcg32 rng(7);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const float f = rng.nextFloat();
        ASSERT_GE(f, 0.0f);
        ASSERT_LT(f, 1.0f);
        sum += f;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, BoundedUniform)
{
    Pcg32 rng(9);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.nextUInt(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // all buckets hit
    EXPECT_EQ(rng.nextUInt(1), 0u);
    EXPECT_EQ(rng.nextUInt(0), 0u);
}

TEST(Sampler, RadicalInverseBase2MatchesVanDerCorput)
{
    for (std::uint32_t i = 1; i < 64; ++i)
        EXPECT_NEAR(radicalInverse(2, i), vanDerCorput(i), 1e-6f) << i;
}

TEST(Sampler, RadicalInverseKnownValues)
{
    EXPECT_FLOAT_EQ(radicalInverse(2, 1), 0.5f);
    EXPECT_FLOAT_EQ(radicalInverse(2, 2), 0.25f);
    EXPECT_FLOAT_EQ(radicalInverse(2, 3), 0.75f);
    EXPECT_FLOAT_EQ(radicalInverse(3, 1), 1.0f / 3.0f);
    EXPECT_FLOAT_EQ(radicalInverse(3, 2), 2.0f / 3.0f);
    EXPECT_FLOAT_EQ(radicalInverse(3, 4), 4.0f / 9.0f);
}

TEST(Sampler, HaltonLowDiscrepancyStratification)
{
    // The first 2^k Halton base-2 samples hit every 1/2^k stratum once.
    HaltonSampler sampler(0);
    std::set<int> strata;
    for (int i = 0; i < 16; ++i) {
        sampler.startSample(static_cast<std::uint64_t>(i));
        const float v = sampler.next1D();
        strata.insert(static_cast<int>(v * 16.0f));
    }
    EXPECT_EQ(strata.size(), 16u);
}

TEST(Sampler, DimensionsAdvance)
{
    HaltonSampler sampler(1);
    sampler.startSample(5);
    EXPECT_EQ(sampler.currentDimension(), 0u);
    (void)sampler.next1D();
    EXPECT_EQ(sampler.currentDimension(), 1u);
    (void)sampler.next2D();
    EXPECT_EQ(sampler.currentDimension(), 3u);
}

TEST(Sampler, CosineHemisphereAboveSurface)
{
    HaltonSampler sampler(3);
    double mean_cos = 0;
    const int n = 4096;
    for (int i = 0; i < n; ++i) {
        sampler.startSample(static_cast<std::uint64_t>(i));
        const Vec3 d = cosineSampleHemisphere(sampler.next2D());
        ASSERT_GE(d.z, 0.0f);
        ASSERT_NEAR(length(d), 1.0f, 1e-4f);
        mean_cos += d.z;
    }
    // E[cos(theta)] = 2/3 for cosine-weighted hemisphere sampling.
    EXPECT_NEAR(mean_cos / n, 2.0 / 3.0, 0.02);
}

TEST(Sampler, ConcentricDiskStaysInDisk)
{
    HaltonSampler sampler(4);
    for (int i = 0; i < 1024; ++i) {
        sampler.startSample(static_cast<std::uint64_t>(i));
        const Vec2 p = concentricSampleDisk(sampler.next2D());
        ASSERT_LE(p.x * p.x + p.y * p.y, 1.0f + 1e-5f);
    }
    EXPECT_EQ(concentricSampleDisk({0.5f, 0.5f}), Vec2(0.0f, 0.0f));
}

TEST(Sampler, UniformTriangleBarycentricsValid)
{
    HaltonSampler sampler(5);
    for (int i = 0; i < 512; ++i) {
        sampler.startSample(static_cast<std::uint64_t>(i));
        const Vec2 b = uniformSampleTriangle(sampler.next2D());
        ASSERT_GE(b.x, 0.0f);
        ASSERT_GE(b.y, 0.0f);
        ASSERT_LE(b.x + b.y, 1.0f + 1e-5f);
    }
}

TEST(Sampler, CosineHemispherePdf)
{
    EXPECT_FLOAT_EQ(cosineHemispherePdf(1.0f),
                    1.0f / std::numbers::pi_v<float>);
    EXPECT_FLOAT_EQ(cosineHemispherePdf(0.0f), 0.0f);
    EXPECT_FLOAT_EQ(cosineHemispherePdf(-0.5f), 0.0f);
}

} // namespace
} // namespace drs::geom
