/**
 * @file
 * Unit tests for counters, the Wm:n active-thread histogram and the table
 * emitters.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "stats/histogram.h"
#include "stats/table.h"

namespace drs::stats {
namespace {

TEST(Counter, AddAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ActiveThreadHistogram, SimdEfficiency)
{
    ActiveThreadHistogram h;
    EXPECT_DOUBLE_EQ(h.simdEfficiency(), 0.0);
    h.recordInstruction(32);
    EXPECT_DOUBLE_EQ(h.simdEfficiency(), 1.0);
    h.recordInstruction(0);
    EXPECT_DOUBLE_EQ(h.simdEfficiency(), 0.5);
    h.recordInstruction(16);
    h.recordInstruction(16);
    EXPECT_DOUBLE_EQ(h.simdEfficiency(), (32 + 0 + 16 + 16) / (4.0 * 32));
}

TEST(ActiveThreadHistogram, BucketBoundaries)
{
    ActiveThreadHistogram h;
    h.recordInstruction(1);  // W1:8
    h.recordInstruction(8);  // W1:8
    h.recordInstruction(9);  // W9:16
    h.recordInstruction(16); // W9:16
    h.recordInstruction(17); // W17:24
    h.recordInstruction(24); // W17:24
    h.recordInstruction(25); // W25:32
    h.recordInstruction(32); // W25:32
    for (int b = 0; b < ActiveThreadHistogram::kNumBuckets; ++b)
        EXPECT_DOUBLE_EQ(h.bucketFraction(b), 2.0 / 8.0) << b;
}

TEST(ActiveThreadHistogram, SpawnCategorySeparate)
{
    ActiveThreadHistogram h;
    h.recordInstruction(32, false);
    h.recordInstruction(32, true);
    h.recordInstruction(32, true);
    EXPECT_EQ(h.instructions(), 3u);
    EXPECT_EQ(h.spawnInstructions(), 2u);
    EXPECT_DOUBLE_EQ(h.spawnFraction(), 2.0 / 3.0);
    // Spawn instructions count toward efficiency but not the Wm:n buckets.
    EXPECT_DOUBLE_EQ(h.bucketFraction(3), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.simdEfficiency(), 1.0);
}

TEST(ActiveThreadHistogram, MergeAccumulates)
{
    ActiveThreadHistogram a, b;
    a.recordInstruction(32);
    b.recordInstruction(8);
    b.recordInstruction(8, true);
    a.merge(b);
    EXPECT_EQ(a.instructions(), 3u);
    EXPECT_EQ(a.spawnInstructions(), 1u);
    EXPECT_EQ(a.activeThreads(), 48u);
    EXPECT_EQ(a.exactCount(8), 2u);
}

TEST(ActiveThreadHistogram, BucketLabels)
{
    EXPECT_EQ(ActiveThreadHistogram::bucketLabel(0), "W1:8");
    EXPECT_EQ(ActiveThreadHistogram::bucketLabel(3), "W25:32");
}

TEST(RunningMean, MeanAndMerge)
{
    RunningMean m;
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    m.add(2.0);
    m.add(4.0);
    EXPECT_DOUBLE_EQ(m.mean(), 3.0);
    RunningMean other;
    other.add(12.0);
    m.merge(other);
    EXPECT_DOUBLE_EQ(m.mean(), 6.0);
    EXPECT_EQ(m.count(), 3u);
}

TEST(Table, AlignedPrint)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2.5"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowPaddedToHeaderWidth)
{
    Table t({"a", "b", "c"});
    t.addRow({"1"});
    EXPECT_EQ(t.row(0).size(), 3u);
    EXPECT_EQ(t.numCols(), 3u);
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(Formatting, Doubles)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(1.23456, 0), "1");
    EXPECT_EQ(formatPercent(0.4106), "41.06%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

} // namespace
} // namespace drs::stats
