#!/usr/bin/env bash
# drs_profile regression check, pinned against tests/fixtures:
#
#  1. The profile fixture (a fig9-style report whose rdctrl-stall share
#     drops as read-control buffers are added) must render, and the
#     stalled_rdctrl percentages must appear in strictly decreasing
#     order — i.e. the tool reproduces the paper's Fig. 9 ordering from
#     a schema-valid report alone.
#  2. A schema_version 2 report must be rejected (non-zero exit), so
#     stale baselines fail loudly instead of mis-parsing.
#
# Usage: check_profile.sh <path-to-drs_profile> <profile-fixture> <v2-fixture>
set -euo pipefail

if [ "$#" -ne 3 ]; then
    echo "usage: $0 <path-to-drs_profile> <profile-fixture> <v2-fixture>" >&2
    exit 2
fi

drs_profile=$1
profile_fixture=$2
v2_fixture=$3

out=$("$drs_profile" "$profile_fixture")
echo "$out"

# The breakdown table is column-oriented: find the stalled_rdctrl column
# in the header and read it off each data row, in report order (1, 2, 4
# read-control buffers). The percentages must strictly decrease.
# (config values may contain spaces, so count percentage fields, not raw
# columns: stalled_rdctrl is the third bucket of the taxonomy).
stalls=$(echo "$out" | awk '
    /issue-slot breakdown/ { want = 1; next }
    want && /stalled_rdctrl/ { ready = 1; next }
    ready && NF == 0 { exit }
    ready {
        n = 0
        for (i = 1; i <= NF; ++i)
            if ($i ~ /%$/ && ++n == 3) print $i
    }
' | tr -d '%')
count=$(echo "$stalls" | grep -c '[0-9]' || true)
if [ "$count" -lt 3 ]; then
    echo "FAIL: expected >= 3 stalled_rdctrl rows, got $count" >&2
    exit 1
fi
if [ "$(echo "$stalls" | sort -rg)" != "$stalls" ]; then
    echo "FAIL: stalled_rdctrl share must decrease with buffer count:" >&2
    echo "$stalls" >&2
    exit 1
fi
echo "ok   stalled_rdctrl share decreases across configs:" $stalls

if "$drs_profile" "$v2_fixture" >/dev/null 2>&1; then
    echo "FAIL: schema_version 2 report was accepted" >&2
    exit 1
fi
echo "ok   schema_version 2 report rejected"
