/**
 * @file
 * Unit tests for the DRS control logic against a scripted mock workspace:
 * renaming, dispatch rules, stalls, the swap engine's greedy operations,
 * and the hardware-cost arithmetic of Section 4.5.
 */

#include <gtest/gtest.h>

#include "core/drs_config.h"
#include "core/drs_control.h"
#include "core/hw_cost.h"
#include "simt/warp.h"

namespace drs::core {
namespace {

using simt::RdctrlResult;
using simt::TravState;

/** A scripted RowWorkspace: states are set directly by the test. */
class MockWorkspace : public simt::RowWorkspace
{
  public:
    MockWorkspace(int rows, int lanes, bool pool_empty = false)
        : rows_(rows), lanes_(lanes), poolEmpty_(pool_empty),
          states_(static_cast<std::size_t>(rows) * lanes, TravState::Fetch)
    {
    }

    int rowCount() const override { return rows_; }
    int laneCount() const override { return lanes_; }
    TravState state(int row, int lane) const override
    {
        return states_[static_cast<std::size_t>(row) * lanes_ + lane];
    }
    void moveRay(int sr, int sl, int dr, int dl) override
    {
        ++moves;
        setState(dr, dl, state(sr, sl));
        setState(sr, sl, TravState::Fetch);
    }
    void swapRays(int ra, int la, int rb, int lb) override
    {
        ++swaps;
        const TravState a = state(ra, la);
        setState(ra, la, state(rb, lb));
        setState(rb, lb, a);
    }
    bool poolEmpty() const override { return poolEmpty_; }
    std::size_t liveRays() const override
    {
        std::size_t n = 0;
        for (auto s : states_)
            n += s != TravState::Fetch ? 1 : 0;
        return n;
    }

    void setState(int row, int lane, TravState s)
    {
        states_[static_cast<std::size_t>(row) * lanes_ + lane] = s;
    }
    void fillRow(int row, TravState s)
    {
        for (int lane = 0; lane < lanes_; ++lane)
            setState(row, lane, s);
    }

    void setPoolEmpty(bool v) { poolEmpty_ = v; }

    int moves = 0;
    int swaps = 0;

  private:
    int rows_;
    int lanes_;
    bool poolEmpty_;
    std::vector<TravState> states_;
};

DrsConfig
strictConfig()
{
    DrsConfig config;
    config.dispatchMinorityTolerance = 0;
    config.fetchRefillThreshold = 1;
    config.fullDispatchTarget = 0;
    return config;
}

TEST(DrsControl, InitialMappingIsIdentity)
{
    MockWorkspace ws(7, 32); // 4 warps + 1 backup + 2 empty
    DrsControl control(strictConfig(), ws, 4);
    for (int w = 0; w < 4; ++w)
        EXPECT_EQ(control.warpRow(w), w);
}

TEST(DrsControl, RejectsTooFewRows)
{
    MockWorkspace ws(5, 32);
    EXPECT_THROW(DrsControl(strictConfig(), ws, 4), std::invalid_argument);
}

TEST(DrsControl, RejectsTooFewBuffers)
{
    MockWorkspace ws(7, 32);
    DrsConfig config;
    config.swapBuffers = 2;
    EXPECT_THROW(DrsControl(config, ws, 4), std::invalid_argument);
}

TEST(DrsControl, FetchDispatchOnEmptyRow)
{
    MockWorkspace ws(7, 32);
    DrsControl control(strictConfig(), ws, 4);
    const RdctrlResult r = control.onRdctrl(0);
    EXPECT_FALSE(r.stall);
    EXPECT_FALSE(r.exit);
    EXPECT_EQ(r.ctrl, TravState::Fetch);
    EXPECT_EQ(r.mask, 0xffffffffu);
}

TEST(DrsControl, UniformInnerRowDispatches)
{
    MockWorkspace ws(7, 32);
    DrsControl control(strictConfig(), ws, 4);
    ws.fillRow(1, TravState::Inner);
    const RdctrlResult r = control.onRdctrl(1);
    EXPECT_FALSE(r.stall);
    EXPECT_EQ(r.ctrl, TravState::Inner);
    EXPECT_EQ(r.mask, 0xffffffffu);
    EXPECT_EQ(r.row, 1);
}

TEST(DrsControl, MixedRowRemapsToUniformRow)
{
    MockWorkspace ws(7, 32);
    DrsControl control(strictConfig(), ws, 4);
    // Warp 0's row is mixed; row 4 (backup) is uniform leaf.
    ws.fillRow(0, TravState::Inner);
    ws.setState(0, 3, TravState::Leaf);
    ws.fillRow(4, TravState::Leaf);
    const RdctrlResult r = control.onRdctrl(0);
    EXPECT_FALSE(r.stall);
    EXPECT_EQ(r.ctrl, TravState::Leaf);
    EXPECT_EQ(r.row, 4);
    EXPECT_EQ(control.warpRow(0), 4);
}

TEST(DrsControl, MixedRowStallsWhenNoUniformRowAndPoolEmpty)
{
    MockWorkspace ws(7, 32, true); // pool empty: no all-fetch fallback
    DrsControl control(strictConfig(), ws, 4);
    ws.fillRow(0, TravState::Inner);
    ws.setState(0, 5, TravState::Leaf);
    const RdctrlResult r = control.onRdctrl(0);
    EXPECT_TRUE(r.stall);
    // The stalled warp released its row for shuffling.
    EXPECT_EQ(control.warpRow(0), -1);
}

TEST(DrsControl, ExitWhenDrained)
{
    MockWorkspace ws(7, 32, true);
    DrsControl control(strictConfig(), ws, 4);
    const RdctrlResult r = control.onRdctrl(2);
    EXPECT_TRUE(r.exit);
}

TEST(DrsControl, MinorityToleranceDispatchesWithPartialMask)
{
    MockWorkspace ws(7, 32);
    DrsConfig config = strictConfig();
    config.dispatchMinorityTolerance = 2;
    DrsControl control(config, ws, 4);
    ws.fillRow(2, TravState::Inner);
    ws.setState(2, 0, TravState::Leaf);
    ws.setState(2, 1, TravState::Leaf);
    const RdctrlResult r = control.onRdctrl(2);
    EXPECT_FALSE(r.stall);
    EXPECT_EQ(r.ctrl, TravState::Inner);
    EXPECT_EQ(simt::popcount(r.mask), 30);
}

TEST(DrsControl, HoleRefillMaskWhenAboveThreshold)
{
    MockWorkspace ws(7, 32);
    DrsConfig config = strictConfig();
    config.fetchRefillThreshold = 4;
    DrsControl control(config, ws, 4);
    ws.fillRow(3, TravState::Inner);
    for (int lane = 0; lane < 5; ++lane)
        ws.setState(3, lane, TravState::Fetch);
    const RdctrlResult r = control.onRdctrl(3);
    EXPECT_FALSE(r.stall);
    EXPECT_EQ(r.ctrl, TravState::Inner);
    EXPECT_EQ(simt::popcount(r.mask), 27);
    EXPECT_EQ(simt::popcount(r.fetchMask), 5);
}

TEST(DrsControl, NoRefillBelowThreshold)
{
    MockWorkspace ws(7, 32);
    DrsConfig config = strictConfig();
    config.fetchRefillThreshold = 8;
    DrsControl control(config, ws, 4);
    ws.fillRow(3, TravState::Inner);
    ws.setState(3, 0, TravState::Fetch);
    const RdctrlResult r = control.onRdctrl(3);
    EXPECT_EQ(r.fetchMask, 0u);
}

TEST(DrsControl, SwapEngineSeparatesMixedRow)
{
    MockWorkspace ws(7, 32, true);
    DrsConfig config = strictConfig();
    DrsControl control(config, ws, 4);
    // Unbound mixed row 4: the engine must move its leaf rays out.
    ws.fillRow(4, TravState::Inner);
    ws.setState(4, 0, TravState::Leaf);
    ws.setState(4, 1, TravState::Leaf);
    // Stall warp 0 so cycle() runs with a dirty engine.
    ws.fillRow(0, TravState::Inner);
    ws.setState(0, 9, TravState::Leaf);
    (void)control.onRdctrl(0);

    for (int i = 0; i < 5000; ++i)
        control.cycle(0);
    // Eventually rows are state-separated: no row holds both states.
    int mixed_rows = 0;
    for (int row = 0; row < 7; ++row) {
        bool has_inner = false;
        bool has_leaf = false;
        for (int lane = 0; lane < 32; ++lane) {
            has_inner |= ws.state(row, lane) == TravState::Inner;
            has_leaf |= ws.state(row, lane) == TravState::Leaf;
        }
        mixed_rows += (has_inner && has_leaf) ? 1 : 0;
    }
    EXPECT_EQ(mixed_rows, 0);
    EXPECT_GT(ws.moves + ws.swaps, 0);
    EXPECT_GT(control.stats().movesCompleted +
                  control.stats().exchangesCompleted,
              0u);
}

TEST(DrsControl, IdealizedConsolidationIsImmediate)
{
    MockWorkspace ws(7, 32, true);
    DrsConfig config = strictConfig();
    config.idealized = true;
    DrsControl control(config, ws, 4);
    ws.fillRow(4, TravState::Inner);
    for (int lane = 0; lane < 10; ++lane)
        ws.setState(4, lane, TravState::Leaf);
    ws.fillRow(5, TravState::Leaf);
    for (int lane = 0; lane < 10; ++lane)
        ws.setState(5, lane, TravState::Inner);
    // One stalled rdctrl marks the engine dirty; a few cycles suffice.
    ws.fillRow(0, TravState::Inner);
    ws.setState(0, 0, TravState::Leaf);
    (void)control.onRdctrl(0);
    for (int i = 0; i < 4; ++i)
        control.cycle(0);
    for (int row = 4; row <= 5; ++row) {
        bool has_inner = false;
        bool has_leaf = false;
        for (int lane = 0; lane < 32; ++lane) {
            has_inner |= ws.state(row, lane) == TravState::Inner;
            has_leaf |= ws.state(row, lane) == TravState::Leaf;
        }
        EXPECT_FALSE(has_inner && has_leaf) << "row " << row;
    }
}

TEST(DrsControl, StallStatisticsAccumulate)
{
    MockWorkspace ws(7, 32, true);
    DrsControl control(strictConfig(), ws, 4);
    ws.fillRow(0, TravState::Inner);
    ws.setState(0, 0, TravState::Leaf);
    const RdctrlResult r = control.onRdctrl(0);
    EXPECT_TRUE(r.stall);
    EXPECT_EQ(control.stats().stallsStarted, 1u);
}

// ------------------------------------------------------- Hardware costs

TEST(HwCost, PaperSwapBufferStorage)
{
    // Paper: 6 x (32 - 1) x 32 bits = 744 bytes.
    DrsConfig config;
    config.swapBuffers = 6;
    const DrsStorage s = computeDrsStorage(config, 58);
    EXPECT_EQ(s.swapBufferBytes, 744u);
}

TEST(HwCost, PaperRayStateTableStorage)
{
    // Paper: 61 x 32 x 20 bits = 488 bytes (58 warps + 1 backup + 2).
    DrsConfig config;
    config.backupRows = 1;
    const DrsStorage s = computeDrsStorage(config, 58);
    EXPECT_EQ(s.rayStateTableBytes, 488u);
}

TEST(HwCost, TotalAboutOnePointFourKb)
{
    DrsConfig config;
    const DrsStorage s = computeDrsStorage(config, 58);
    EXPECT_GT(s.totalBytes, 1200u);
    EXPECT_LT(s.totalBytes, 1600u);
    // Paper: 0.55% of the 256 KB register file per SMX.
    const double fraction = static_cast<double>(s.totalBytes) / (256 * 1024);
    EXPECT_NEAR(fraction, 0.0055, 0.0015);
}

TEST(HwCost, BaselineStorageMatchesPaper)
{
    const BaselineStorage s = computeBaselineStorage();
    // Paper: 54 x 32 x 17 x 32 bits = 114.75 KB.
    EXPECT_EQ(s.dmkSpawnMemoryBytes, 117504u);
    EXPECT_NEAR(static_cast<double>(s.dmkSpawnMemoryBytes) / 1024.0, 114.75,
                0.01);
    // Paper: 10 x 32 x 64 bits = 2.5 KB.
    EXPECT_EQ(s.tbcWarpBufferBytes, 2560u);
}

TEST(HwCost, AreaScalesFromSynthesisAnchor)
{
    DrsConfig config;
    const DrsStorage s = computeDrsStorage(config, 58);
    const DrsArea a = estimateDrsArea(s);
    EXPECT_NEAR(a.mm2PerCore, 0.042, 0.01);
    // Paper: ~0.11% of a 550 mm^2 GPU for 15 SMXs.
    EXPECT_NEAR(a.fractionOfGpu, 0.0011, 0.0004);
}

TEST(HwCost, SpawnableWarps)
{
    DrsConfig config;
    config.useExtraRegisterBank = true;
    EXPECT_EQ(config.spawnableWarps(), 60); // paper: Kernel 1 spawns 60
    config.useExtraRegisterBank = false;
    config.backupRows = 1;
    EXPECT_EQ(config.spawnableWarps(), 58); // paper: reduced to 58
}

} // namespace
} // namespace drs::core
