/**
 * @file
 * Unit tests for the kernel IR: CFG validation and immediate
 * post-dominator computation (the SIMT reconvergence points).
 */

#include <gtest/gtest.h>

#include "kernels/aila_kernel.h"
#include "kernels/drs_kernel.h"
#include "simt/kernel_ir.h"

namespace drs::simt {
namespace {

Block
makeBlock(std::string name, std::vector<int> succ, int instr = 1)
{
    Block b;
    b.name = std::move(name);
    b.successors = std::move(succ);
    b.instructionCount = instr;
    return b;
}

TEST(Program, RejectsEmpty)
{
    EXPECT_THROW(Program({}, 0), std::invalid_argument);
}

TEST(Program, RejectsExitWithSuccessors)
{
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("a", {1}));
    blocks.push_back(makeBlock("exit", {0}));
    EXPECT_THROW(Program(std::move(blocks), 1), std::invalid_argument);
}

TEST(Program, RejectsDanglingSuccessor)
{
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("a", {5}));
    blocks.push_back(makeBlock("exit", {}));
    EXPECT_THROW(Program(std::move(blocks), 1), std::invalid_argument);
}

TEST(Program, RejectsUnreachableExit)
{
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("a", {0})); // self loop, never exits
    blocks.push_back(makeBlock("exit", {}));
    EXPECT_THROW(Program(std::move(blocks), 1), std::invalid_argument);
}

TEST(Program, RejectsNonPositiveSize)
{
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("a", {1}, 0));
    blocks.push_back(makeBlock("exit", {}));
    EXPECT_THROW(Program(std::move(blocks), 1), std::invalid_argument);
}

TEST(Program, DiamondPostDominators)
{
    //     0
    //    / \
    //   1   2
    //    \ /
    //     3 -> 4(exit)
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("entry", {1, 2}));
    blocks.push_back(makeBlock("left", {3}));
    blocks.push_back(makeBlock("right", {3}));
    blocks.push_back(makeBlock("join", {4}));
    blocks.push_back(makeBlock("exit", {}));
    const Program p(std::move(blocks), 4);
    EXPECT_EQ(p.immediatePostDominator(0), 3);
    EXPECT_EQ(p.immediatePostDominator(1), 3);
    EXPECT_EQ(p.immediatePostDominator(2), 3);
    EXPECT_EQ(p.immediatePostDominator(3), 4);
    EXPECT_EQ(p.immediatePostDominator(4), 4);
}

TEST(Program, NestedDiamonds)
{
    // 0 -> {1, 4}; 1 -> {2, 3}; 2,3 -> 5; 4 -> 5; 5 -> 6(exit)
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("0", {1, 4}));
    blocks.push_back(makeBlock("1", {2, 3}));
    blocks.push_back(makeBlock("2", {5}));
    blocks.push_back(makeBlock("3", {5}));
    blocks.push_back(makeBlock("4", {5}));
    blocks.push_back(makeBlock("5", {6}));
    blocks.push_back(makeBlock("exit", {}));
    const Program p(std::move(blocks), 6);
    EXPECT_EQ(p.immediatePostDominator(0), 5);
    EXPECT_EQ(p.immediatePostDominator(1), 5);
    EXPECT_EQ(p.immediatePostDominator(5), 6);
}

TEST(Program, LoopPostDominators)
{
    // 0 -> 1; 1 -> {2, 3}; 2 -> 1 (back edge); 3(exit)
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("pre", {1}));
    blocks.push_back(makeBlock("head", {2, 3}));
    blocks.push_back(makeBlock("body", {1}));
    blocks.push_back(makeBlock("exit", {}));
    const Program p(std::move(blocks), 3);
    EXPECT_EQ(p.immediatePostDominator(1), 3);
    EXPECT_EQ(p.immediatePostDominator(2), 1);
}

TEST(Program, AilaKernelReconvergencePoints)
{
    // The while-while CFG must produce the divergence behaviour of the
    // paper's Figure 1: inner-loop divergence reconverges at the leaf
    // head, leaf-loop divergence at the done check, and the done check at
    // the store (the warp waits for its longest ray before refetching).
    using B = kernels::AilaBlocks;
    const Program p = kernels::makeAilaProgram(kernels::defaultCostModel());
    EXPECT_EQ(p.immediatePostDominator(B::kInnerHead), B::kLeafHead);
    EXPECT_EQ(p.immediatePostDominator(B::kInnerTest), B::kInnerHead);
    EXPECT_EQ(p.immediatePostDominator(B::kLeafHead), B::kDoneCheck);
    EXPECT_EQ(p.immediatePostDominator(B::kLeafTest), B::kLeafHead);
    EXPECT_EQ(p.immediatePostDominator(B::kDoneCheck), B::kStore);
    EXPECT_EQ(p.immediatePostDominator(B::kStore), B::kFetch);
    EXPECT_EQ(p.immediatePostDominator(B::kFetch), B::kExit);
}

TEST(Program, DrsKernelReconvergencePoints)
{
    // The while-if CFG: every if-body reconverges back toward rdctrl;
    // intra-body sub-branches reconverge inside the body.
    using B = kernels::DrsBlocks;
    const Program p = kernels::makeDrsProgram(kernels::defaultCostModel());
    EXPECT_EQ(p.immediatePostDominator(B::kInnerTest), B::kSetStateInner);
    EXPECT_EQ(p.immediatePostDominator(B::kLeafHead), B::kSetStateLeaf);
    EXPECT_EQ(p.immediatePostDominator(B::kLeafTest), B::kLeafHead);
    EXPECT_EQ(p.immediatePostDominator(B::kSetStateInner), B::kRdctrl);
    EXPECT_EQ(p.immediatePostDominator(B::kRdctrl), B::kExit);
}

TEST(Program, TotalInstructionCount)
{
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("a", {1}, 10));
    blocks.push_back(makeBlock("exit", {}, 2));
    const Program p(std::move(blocks), 1);
    EXPECT_EQ(p.totalInstructionCount(), 12);
}

TEST(Program, KernelLoopBodySizeMatchesPaperScale)
{
    // Paper: "the main while loop of Kernel 1 is composed of over 300
    // lines of instructions, where the rdctrl instruction only takes up
    // one line." Our calibration keeps rdctrl a small fraction of the
    // loop body.
    const Program p = kernels::makeDrsProgram(kernels::defaultCostModel());
    const int rdctrl =
        p.block(kernels::DrsBlocks::kRdctrl).instructionCount;
    const int total = p.totalInstructionCount();
    EXPECT_LT(static_cast<double>(rdctrl) / total, 0.07);
}

} // namespace
} // namespace drs::simt
