/**
 * @file
 * Unit tests for the kernel IR: CFG validation and immediate
 * post-dominator computation (the SIMT reconvergence points).
 */

#include <gtest/gtest.h>

#include "kernels/aila_kernel.h"
#include "kernels/drs_kernel.h"
#include "simt/kernel_ir.h"
#include "simt/warp.h"

namespace drs::simt {
namespace {

Block
makeBlock(std::string name, std::vector<int> succ, int instr = 1)
{
    Block b;
    b.name = std::move(name);
    b.successors = std::move(succ);
    b.instructionCount = instr;
    return b;
}

TEST(Program, RejectsEmpty)
{
    EXPECT_THROW(Program({}, 0), std::invalid_argument);
}

TEST(Program, RejectsExitWithSuccessors)
{
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("a", {1}));
    blocks.push_back(makeBlock("exit", {0}));
    EXPECT_THROW(Program(std::move(blocks), 1), std::invalid_argument);
}

TEST(Program, RejectsDanglingSuccessor)
{
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("a", {5}));
    blocks.push_back(makeBlock("exit", {}));
    EXPECT_THROW(Program(std::move(blocks), 1), std::invalid_argument);
}

TEST(Program, RejectsUnreachableExit)
{
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("a", {0})); // self loop, never exits
    blocks.push_back(makeBlock("exit", {}));
    EXPECT_THROW(Program(std::move(blocks), 1), std::invalid_argument);
}

TEST(Program, RejectsNonPositiveSize)
{
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("a", {1}, 0));
    blocks.push_back(makeBlock("exit", {}));
    EXPECT_THROW(Program(std::move(blocks), 1), std::invalid_argument);
}

TEST(Program, DiamondPostDominators)
{
    //     0
    //    / \
    //   1   2
    //    \ /
    //     3 -> 4(exit)
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("entry", {1, 2}));
    blocks.push_back(makeBlock("left", {3}));
    blocks.push_back(makeBlock("right", {3}));
    blocks.push_back(makeBlock("join", {4}));
    blocks.push_back(makeBlock("exit", {}));
    const Program p(std::move(blocks), 4);
    EXPECT_EQ(p.immediatePostDominator(0), 3);
    EXPECT_EQ(p.immediatePostDominator(1), 3);
    EXPECT_EQ(p.immediatePostDominator(2), 3);
    EXPECT_EQ(p.immediatePostDominator(3), 4);
    EXPECT_EQ(p.immediatePostDominator(4), 4);
}

TEST(Program, NestedDiamonds)
{
    // 0 -> {1, 4}; 1 -> {2, 3}; 2,3 -> 5; 4 -> 5; 5 -> 6(exit)
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("0", {1, 4}));
    blocks.push_back(makeBlock("1", {2, 3}));
    blocks.push_back(makeBlock("2", {5}));
    blocks.push_back(makeBlock("3", {5}));
    blocks.push_back(makeBlock("4", {5}));
    blocks.push_back(makeBlock("5", {6}));
    blocks.push_back(makeBlock("exit", {}));
    const Program p(std::move(blocks), 6);
    EXPECT_EQ(p.immediatePostDominator(0), 5);
    EXPECT_EQ(p.immediatePostDominator(1), 5);
    EXPECT_EQ(p.immediatePostDominator(5), 6);
}

TEST(Program, LoopPostDominators)
{
    // 0 -> 1; 1 -> {2, 3}; 2 -> 1 (back edge); 3(exit)
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("pre", {1}));
    blocks.push_back(makeBlock("head", {2, 3}));
    blocks.push_back(makeBlock("body", {1}));
    blocks.push_back(makeBlock("exit", {}));
    const Program p(std::move(blocks), 3);
    EXPECT_EQ(p.immediatePostDominator(1), 3);
    EXPECT_EQ(p.immediatePostDominator(2), 1);
}

TEST(Program, AilaKernelReconvergencePoints)
{
    // The while-while CFG must produce the divergence behaviour of the
    // paper's Figure 1: inner-loop divergence reconverges at the leaf
    // head, leaf-loop divergence at the done check, and the done check at
    // the store (the warp waits for its longest ray before refetching).
    using B = kernels::AilaBlocks;
    const Program p = kernels::makeAilaProgram(kernels::defaultCostModel());
    EXPECT_EQ(p.immediatePostDominator(B::kInnerHead), B::kLeafHead);
    EXPECT_EQ(p.immediatePostDominator(B::kInnerTest), B::kInnerHead);
    EXPECT_EQ(p.immediatePostDominator(B::kLeafHead), B::kDoneCheck);
    EXPECT_EQ(p.immediatePostDominator(B::kLeafTest), B::kLeafHead);
    EXPECT_EQ(p.immediatePostDominator(B::kDoneCheck), B::kStore);
    EXPECT_EQ(p.immediatePostDominator(B::kStore), B::kFetch);
    EXPECT_EQ(p.immediatePostDominator(B::kFetch), B::kExit);
}

TEST(Program, DrsKernelReconvergencePoints)
{
    // The while-if CFG: every if-body reconverges back toward rdctrl;
    // intra-body sub-branches reconverge inside the body.
    using B = kernels::DrsBlocks;
    const Program p = kernels::makeDrsProgram(kernels::defaultCostModel());
    EXPECT_EQ(p.immediatePostDominator(B::kInnerTest), B::kSetStateInner);
    EXPECT_EQ(p.immediatePostDominator(B::kLeafHead), B::kSetStateLeaf);
    EXPECT_EQ(p.immediatePostDominator(B::kLeafTest), B::kLeafHead);
    EXPECT_EQ(p.immediatePostDominator(B::kSetStateInner), B::kRdctrl);
    EXPECT_EQ(p.immediatePostDominator(B::kRdctrl), B::kExit);
}

TEST(Program, TotalInstructionCount)
{
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("a", {1}, 10));
    blocks.push_back(makeBlock("exit", {}, 2));
    const Program p(std::move(blocks), 1);
    EXPECT_EQ(p.totalInstructionCount(), 12);
}

TEST(Program, KernelLoopBodySizeMatchesPaperScale)
{
    // Paper: "the main while loop of Kernel 1 is composed of over 300
    // lines of instructions, where the rdctrl instruction only takes up
    // one line." Our calibration keeps rdctrl a small fraction of the
    // loop body.
    const Program p = kernels::makeDrsProgram(kernels::defaultCostModel());
    const int rdctrl =
        p.block(kernels::DrsBlocks::kRdctrl).instructionCount;
    const int total = p.totalInstructionCount();
    EXPECT_LT(static_cast<double>(rdctrl) / total, 0.07);
}

// ------------------------------------------------- Warp on nested loops
//
// Regression coverage for the bottom-entry reconvergence audit: the
// bottom stack entry's rpc is always the exit block, so a uniform jump
// that hits it must run through the exit re-check (not silently rewrite
// pc), and nested-loop divergence must wind and unwind the stack without
// ever leaving the bottom entry reconverging anywhere else.

/** 0 -> 1; 1 -> {2, 5}; 2 -> {3, 4}; 3 -> 2; 4 -> 1; 5 = exit. */
Program
makeNestedLoopProgram()
{
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("pre", {1}));
    blocks.push_back(makeBlock("outer", {2, 5}));
    blocks.push_back(makeBlock("inner", {3, 4}));
    blocks.push_back(makeBlock("body", {2}));
    blocks.push_back(makeBlock("latch", {1}));
    blocks.push_back(makeBlock("exit", {}));
    return Program(std::move(blocks), 5);
}

TEST(Warp, RejectsBadLaneCount)
{
    EXPECT_THROW(Warp(0, 0, 0, 1, 0), std::invalid_argument);
    EXPECT_THROW(Warp(0, 0, 0, 1, 33), std::invalid_argument);
}

TEST(Warp, SingleEntryRpcHitExitsWarp)
{
    // The bottom entry's rpc is the exit block; a uniform jump onto it
    // must exit the warp through the re-check, not leave a live warp
    // parked at its "reconvergence point".
    std::vector<Block> blocks;
    blocks.push_back(makeBlock("a", {1}));
    blocks.push_back(makeBlock("exit", {}));
    Program program(std::move(blocks), 1);

    Warp warp(0, 0, 0, 1, 32);
    const std::vector<int> next(32, 1);
    warp.applySuccessors(next, program);
    EXPECT_TRUE(warp.exited());
    EXPECT_EQ(warp.stackDepth(), 1u);
}

TEST(Warp, SingleEntryNonRpcJumpContinues)
{
    // A uniform jump that does NOT hit the bottom entry's rpc simply
    // advances pc: depth stays 1, the warp keeps running.
    const Program program = makeNestedLoopProgram();
    Warp warp(0, 0, 0, 5, 32);
    std::vector<int> next(32, 1);
    warp.applySuccessors(next, program);
    EXPECT_FALSE(warp.exited());
    EXPECT_EQ(warp.pc(), 1);
    EXPECT_EQ(warp.stackDepth(), 1u);
    std::fill(next.begin(), next.end(), 2);
    warp.applySuccessors(next, program);
    EXPECT_FALSE(warp.exited());
    EXPECT_EQ(warp.pc(), 2);
    EXPECT_EQ(warp.stackDepth(), 1u);
}

TEST(Warp, NestedLoopDivergenceSchedule)
{
    const Program program = makeNestedLoopProgram();
    EXPECT_EQ(program.immediatePostDominator(1), 5);
    EXPECT_EQ(program.immediatePostDominator(2), 4);

    Warp warp(0, 0, 0, 5, 32);
    std::vector<int> next(32, 1);
    warp.applySuccessors(next, program); // 0 -> 1, uniform
    EXPECT_EQ(warp.pc(), 1);
    EXPECT_EQ(warp.stackDepth(), 1u);

    // Outer divergence at 1: rpc = ipdom(1) = exit. Lanes 16..31 head
    // straight for the exit and wait at the bottom entry; lanes 0..15
    // enter the loop nest as a pushed side.
    for (int i = 0; i < 32; ++i)
        next[static_cast<std::size_t>(i)] = (i < 16) ? 2 : 5;
    warp.applySuccessors(next, program);
    EXPECT_EQ(warp.stackDepth(), 2u);
    EXPECT_EQ(warp.pc(), 2);
    EXPECT_EQ(popcount(warp.activeMask()), 16);

    // Inner divergence at 2: rpc = ipdom(2) = 4. Lanes 8..15 target the
    // rpc itself and wait at the new reconvergence entry; lanes 0..7
    // take the loop body.
    for (int i = 0; i < 16; ++i)
        next[static_cast<std::size_t>(i)] = (i < 8) ? 3 : 4;
    warp.applySuccessors(next, program);
    EXPECT_EQ(warp.stackDepth(), 3u);
    EXPECT_EQ(warp.pc(), 3);
    EXPECT_EQ(popcount(warp.activeMask()), 8);

    // The body loops back to the inner head: the side entry just moves.
    std::fill(next.begin(), next.end(), 2);
    warp.applySuccessors(next, program);
    EXPECT_EQ(warp.stackDepth(), 3u);
    EXPECT_EQ(warp.pc(), 2);
    EXPECT_EQ(popcount(warp.activeMask()), 8);

    // All 8 lanes now leave the inner loop: pc hits rpc 4, the side
    // pops, and the reconvergence entry resumes with all 16 lanes.
    std::fill(next.begin(), next.end(), 4);
    warp.applySuccessors(next, program);
    EXPECT_EQ(warp.stackDepth(), 2u);
    EXPECT_EQ(warp.pc(), 4);
    EXPECT_EQ(popcount(warp.activeMask()), 16);

    // The latch returns to the outer head: still one side deep.
    std::fill(next.begin(), next.end(), 1);
    warp.applySuccessors(next, program);
    EXPECT_EQ(warp.stackDepth(), 2u);
    EXPECT_EQ(warp.pc(), 1);

    // Second outer iteration exits uniformly: the side's pc hits its rpc
    // (the exit), pops, and the bottom entry — already waiting at the
    // exit — reports the warp done with every lane reconverged.
    std::fill(next.begin(), next.end(), 5);
    warp.applySuccessors(next, program);
    EXPECT_TRUE(warp.exited());
    EXPECT_EQ(warp.stackDepth(), 1u);
    EXPECT_EQ(popcount(warp.activeMask()), 32);
}

TEST(Warp, ForceExitDuringNestedDivergence)
{
    // forceExit mid-divergence (the DRS retire path) must collapse the
    // whole stack to a clean exited state, depth 3 or not.
    const Program program = makeNestedLoopProgram();
    Warp warp(0, 0, 0, 5, 32);
    std::vector<int> next(32, 1);
    warp.applySuccessors(next, program);
    for (int i = 0; i < 32; ++i)
        next[static_cast<std::size_t>(i)] = (i < 16) ? 2 : 5;
    warp.applySuccessors(next, program);
    for (int i = 0; i < 16; ++i)
        next[static_cast<std::size_t>(i)] = (i < 8) ? 3 : 4;
    warp.applySuccessors(next, program);
    ASSERT_EQ(warp.stackDepth(), 3u);

    warp.forceExit();
    EXPECT_TRUE(warp.exited());
    EXPECT_EQ(warp.stackDepth(), 1u);
    EXPECT_EQ(warp.pc(), 5);
}

} // namespace
} // namespace drs::simt
