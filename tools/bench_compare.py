#!/usr/bin/env python3
"""Compare two bench-report directories and fail on regressions.

Usage:
    bench_compare.py BASELINE_DIR CURRENT_DIR [--tolerance REL]

Both directories hold BENCH_*.json reports (schema v4, see
src/obs/report.h). Reports are paired by file name, rows by their
(scene, arch, config, bounce) identity, and each well-known metric is
compared with a directional relative tolerance: a metric only fails in
the direction that means "worse" (fewer Mrays/s, more cycles, a higher
stall rate...). Wall-clock fields are ignored — the simulator is
deterministic, the machine is not — and BENCH_micro.json (google
benchmark wall-clock output) is skipped entirely.

Exit codes: 0 = no regression, 1 = regression or non-comparable input,
2 = usage error. Used by run_benches.sh --compare and the CI smoke test.
"""

import argparse
import json
import os
import sys

# Metric name -> direction in which the CURRENT value is a regression.
# "down" = regression when current < baseline, "up" = when current >.
METRICS = {
    "simd_efficiency": "down",
    "mrays_per_s": "down",
    "speedup_vs_aila": "down",
    "l1d_hit_rate": "down",
    "l1t_hit_rate": "down",
    "l2_hit_rate": "down",
    "cycles": "up",
    "rdctrl_stall_rate": "up",
    "rdctrl_stall_cycles": "up",
    "spawn_conflict_cycles": "up",
}

IDENTITY_KEYS = ("scene", "arch", "config", "bounce")

SKIP_FILES = {"BENCH_micro.json"}


def load_reports(directory):
    if not os.path.isdir(directory):
        raise SystemExit(f"bench_compare: {directory} is not a directory")
    reports = {}
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        if name in SKIP_FILES:
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, encoding="utf-8") as handle:
                reports[name] = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(f"bench_compare: cannot read {path}: {error}")
    return reports


def row_key(row):
    return tuple(str(row.get(key, "")) for key in IDENTITY_KEYS)


def describe(key):
    return "/".join(part for part in key if part) or "<unnamed row>"


def compare_report(name, baseline, current, tolerance, problems):
    """Append problem strings for one report pair; returns rows compared."""
    for doc, where in ((baseline, "baseline"), (current, "current")):
        if doc.get("degraded"):
            problems.append(
                f"{name}: {where} report is degraded (quarantined jobs) "
                "and not comparable")
            return 0

    if baseline.get("scale") != current.get("scale"):
        problems.append(
            f"{name}: experiment scales differ — baseline "
            f"{json.dumps(baseline.get('scale'), sort_keys=True)} vs "
            f"current {json.dumps(current.get('scale'), sort_keys=True)}; "
            "regenerate the baseline at the same DRS_RAYS/DRS_SCALE/DRS_SMX")
        return 0

    base_rows = {row_key(row): row for row in baseline.get("results", [])}
    cur_rows = {row_key(row): row for row in current.get("results", [])}

    for key in base_rows:
        if key not in cur_rows:
            problems.append(f"{name}: row {describe(key)} missing from "
                            "current report")

    compared = 0
    for key, cur in cur_rows.items():
        base = base_rows.get(key)
        if base is None:
            continue  # new rows are additions, not regressions
        compared += 1
        for metric, direction in METRICS.items():
            if metric not in base or metric not in cur:
                continue
            base_value = float(base[metric])
            cur_value = float(cur[metric])
            if direction == "down":
                limit = base_value * (1.0 - tolerance)
                failed = cur_value < limit
            else:
                limit = base_value * (1.0 + tolerance)
                failed = cur_value > limit
            if failed:
                worse = "below" if direction == "down" else "above"
                problems.append(
                    f"{name}: {describe(key)}: {metric} = {cur_value:g} is "
                    f"{worse} the tolerated {limit:g} "
                    f"(baseline {base_value:g}, tolerance "
                    f"{tolerance:.1%})")
    return compared


def main(argv):
    parser = argparse.ArgumentParser(
        description="Compare two bench-report directories; non-zero exit "
                    "on regression.")
    parser.add_argument("baseline", help="baseline report directory")
    parser.add_argument("current", help="current report directory")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="relative tolerance per metric "
                             "(default 0.02 = 2%%)")
    try:
        args = parser.parse_args(argv)
    except SystemExit:
        # argparse exits 2 on usage errors already; re-raise unchanged.
        raise
    if args.tolerance < 0:
        parser.error("--tolerance must be non-negative")

    baseline = load_reports(args.baseline)
    current = load_reports(args.current)
    if not baseline:
        print(f"bench_compare: no BENCH_*.json reports in {args.baseline}",
              file=sys.stderr)
        return 2

    problems = []
    compared_rows = 0
    compared_files = 0
    for name, base_doc in sorted(baseline.items()):
        cur_doc = current.get(name)
        if cur_doc is None:
            problems.append(f"{name}: present in baseline but missing from "
                            f"{args.current}")
            continue
        compared_files += 1
        compared_rows += compare_report(name, base_doc, cur_doc,
                                        args.tolerance, problems)

    if problems:
        print(f"bench_compare: {len(problems)} problem(s) against "
              f"{args.baseline}:")
        for problem in problems:
            print(f"  REGRESSION: {problem}")
        return 1

    print(f"bench_compare: OK — {compared_rows} rows across "
          f"{compared_files} reports within {args.tolerance:.1%} of "
          f"{args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
