/**
 * @file
 * Event-log analyzer for the structured JSONL logs written by
 * obs::EventLog (DRS_LOG=<path>). A fleet run appends every record —
 * coordinator and workers share the fd across fork(), each line is one
 * atomic write — so one file holds the interleaved story of a run.
 * This tool turns it back into something readable:
 *
 *   - per-(subsystem, event) counts, with severities, so "how many
 *     heartbeat kills" is one glance, not one grep;
 *   - a supervision timeline of the fleet's lifecycle events (worker
 *     deaths, respawns, heartbeat kills, redispatches, quarantines,
 *     chaos/crash injections) in timestamp order;
 *   - the slowest jobs, by pairing each job's last fleet.dispatch with
 *     its fleet.job_done (both Debug events — run with
 *     DRS_LOG_LEVEL=debug to capture them);
 *   - suppressed-record totals from the rate limiter's log.rate_limited
 *     summaries, so "the log is complete" is checkable.
 *
 * With --count SUBSYSTEM.EVENT the tool prints only the total count of
 * that event across all files — the chaos harness uses this to
 * cross-check the log against summary.fleet counters.
 *
 * A torn tail line (crash mid-append) is tolerated and counted;
 * malformed lines elsewhere fail the run.
 *
 * Usage: drs_events [--count SUBSYSTEM.EVENT] LOG.jsonl...
 *
 * Exit status: 0 = analyzed, 1 = corrupt log (malformed line before the
 * tail), 2 = usage / IO error.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: drs_events [--count SUBSYSTEM.EVENT] LOG.jsonl...\n");
    return 2;
}

struct Record
{
    std::uint64_t tsMicros = 0;
    std::uint64_t pid = 0;
    std::string level;
    std::string subsystem;
    std::string event;
    drs::obs::Json data;
};

/** Flatten a record's data object into "k=v k=v" for one-line output. */
std::string
dataText(const drs::obs::Json &data)
{
    if (!data.isObject())
        return "";
    std::string text;
    for (const auto &[key, value] : data.asObject()) {
        if (!text.empty())
            text += " ";
        text += key + "=";
        std::string v = value.isString() ? value.asString() : value.dump();
        std::replace(v.begin(), v.end(), '\n', ' ');
        if (v.size() > 60)
            v = v.substr(0, 57) + "...";
        text += v;
    }
    return text;
}

/** Fleet lifecycle events worth a timeline line. */
bool
isSupervisionEvent(const Record &r)
{
    static const char *kEvents[] = {
        "worker_death", "respawn",        "heartbeat_kill", "redispatch",
        "quarantine",   "crash_injection", "degraded",      "cancelled",
        "hang",         "kill"};
    if (r.subsystem != "fleet" && r.subsystem != "chaos" &&
        r.subsystem != "sweep")
        return false;
    for (const char *event : kEvents)
        if (r.event == event)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string countKey;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--count") {
            if (i + 1 >= argc)
                return usage();
            countKey = argv[++i];
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        return usage();

    std::vector<Record> records;
    std::uint64_t suppressed = 0;
    bool ok = true;
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "drs_events: cannot open %s\n",
                         path.c_str());
            return 2;
        }
        std::string line;
        std::size_t lineNumber = 0;
        std::size_t torn = 0;
        while (std::getline(in, line)) {
            ++lineNumber;
            if (line.empty())
                continue;
            if (torn > 0) {
                std::fprintf(stderr,
                             "drs_events: %s:%zu follows a malformed line — "
                             "log corrupt beyond a crash tail\n",
                             path.c_str(), lineNumber);
                ok = false;
            }
            std::string parseError;
            const auto parsed = drs::obs::Json::parse(line, &parseError);
            if (!parsed || !parsed->isObject()) {
                ++torn; // tolerated if it stays the final line
                continue;
            }
            Record record;
            auto uintField = [&](const char *key) -> std::uint64_t {
                const drs::obs::Json *v = parsed->find(key);
                return v && v->isNumber() ? v->asUint() : 0;
            };
            auto stringField = [&](const char *key) -> std::string {
                const drs::obs::Json *v = parsed->find(key);
                return v && v->isString() ? v->asString() : "";
            };
            record.tsMicros = uintField("ts_us");
            record.pid = uintField("pid");
            record.level = stringField("level");
            record.subsystem = stringField("subsystem");
            record.event = stringField("event");
            if (record.subsystem.empty() || record.event.empty()) {
                ++torn;
                continue;
            }
            if (const drs::obs::Json *data = parsed->find("data"))
                record.data = *data;
            if (record.subsystem == "log" &&
                record.event == "rate_limited")
                if (const drs::obs::Json *n = record.data.find("suppressed");
                    n && n->isNumber())
                    suppressed += n->asUint();
            records.push_back(std::move(record));
        }
        if (torn > 1) {
            std::fprintf(stderr,
                         "drs_events: %s has %zu malformed lines (at most "
                         "one crash tail is expected)\n",
                         path.c_str(), torn);
            ok = false;
        }
    }

    if (!countKey.empty()) {
        const std::size_t dot = countKey.find('.');
        if (dot == std::string::npos || dot == 0 ||
            dot + 1 >= countKey.size())
            return usage();
        const std::string subsystem = countKey.substr(0, dot);
        const std::string event = countKey.substr(dot + 1);
        std::uint64_t count = 0;
        for (const Record &r : records)
            if (r.subsystem == subsystem && r.event == event)
                ++count;
        std::printf("%llu\n", static_cast<unsigned long long>(count));
        return ok ? 0 : 1;
    }

    std::stable_sort(records.begin(), records.end(),
                     [](const Record &a, const Record &b) {
                         return a.tsMicros < b.tsMicros;
                     });
    const std::uint64_t epoch = records.empty() ? 0 : records[0].tsMicros;

    // Per-(subsystem, event) counts, insertion-free ordered map.
    std::map<std::pair<std::string, std::string>,
             std::pair<std::uint64_t, std::string>>
        counts;
    for (const Record &r : records) {
        auto &slot = counts[{r.subsystem, r.event}];
        ++slot.first;
        slot.second = r.level;
    }
    std::printf("== event counts (%zu records) ==\n", records.size());
    for (const auto &[key, value] : counts)
        std::printf("%8llu  %-5s  %s.%s\n",
                    static_cast<unsigned long long>(value.first),
                    value.second.c_str(), key.first.c_str(),
                    key.second.c_str());
    if (suppressed > 0)
        std::printf("%8llu  (suppressed by the rate limiter — counts above "
                    "are incomplete)\n",
                    static_cast<unsigned long long>(suppressed));

    std::printf("\n== supervision timeline ==\n");
    std::size_t timelineLines = 0;
    for (const Record &r : records) {
        if (!isSupervisionEvent(r))
            continue;
        std::printf("+%9.3fs  [%llu] %s.%s %s\n",
                    static_cast<double>(r.tsMicros - epoch) / 1e6,
                    static_cast<unsigned long long>(r.pid),
                    r.subsystem.c_str(), r.event.c_str(),
                    dataText(r.data).c_str());
        ++timelineLines;
    }
    if (timelineLines == 0)
        std::printf("(no supervision events — a clean run)\n");

    // Slowest jobs: pair each job's last dispatch with its job_done.
    struct JobTiming
    {
        std::uint64_t dispatchTs = 0;
        double seconds = -1.0;
    };
    std::map<std::uint64_t, JobTiming> timings;
    for (const Record &r : records) {
        if (r.subsystem != "fleet")
            continue;
        const drs::obs::Json *job = r.data.find("job");
        if (job == nullptr || !job->isNumber())
            continue;
        if (r.event == "dispatch")
            timings[job->asUint()].dispatchTs = r.tsMicros;
        else if (r.event == "job_done") {
            JobTiming &t = timings[job->asUint()];
            if (t.dispatchTs != 0 && r.tsMicros >= t.dispatchTs)
                t.seconds =
                    static_cast<double>(r.tsMicros - t.dispatchTs) / 1e6;
        }
    }
    std::vector<std::pair<std::uint64_t, double>> slowest;
    for (const auto &[job, timing] : timings)
        if (timing.seconds >= 0.0)
            slowest.emplace_back(job, timing.seconds);
    if (!slowest.empty()) {
        std::sort(slowest.begin(), slowest.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        if (slowest.size() > 10)
            slowest.resize(10);
        std::printf("\n== slowest jobs (dispatch -> done) ==\n");
        for (const auto &[job, seconds] : slowest)
            std::printf("%9.3fs  job %llu\n", seconds,
                        static_cast<unsigned long long>(job));
    }
    return ok ? 0 : 1;
}
