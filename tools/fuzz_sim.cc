/**
 * @file
 * Randomized cross-check fuzzer for the SIMT simulator.
 *
 * Generates random scenes × scales × architectures × configurations ×
 * thread counts, runs every one with full invariant checking (DRS_CHECK
 * machinery forced on) and asserts that SimStats are bit-identical across
 * smxThreads, that checking itself never alters a result, and that
 * profiling (issue-slot attribution + windowed sampling at a randomized
 * interval/capacity) is a pure observer whose ledger conserves slots.
 * Every configuration derives from one printed 64-bit seed: rerun a
 * failure with --replay <seed>.
 *
 * Usage:
 *   fuzz_sim [--configs N] [--seed MASTER] [--jobs N] [--replay SEED]
 *
 * Exit code 0 = every configuration passed, 1 = at least one violation.
 */

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "check/check.h"
#include "geom/rng.h"
#include "harness/arch_plugin.h"
#include "harness/harness.h"
#include "obs/attribution.h"
#include "obs/sampler.h"
#include "harness/report.h"
#include "harness/sweep.h"

namespace {

using drs::harness::Arch;

std::mutex g_print_mutex;

/** One fully-derived fuzz configuration (a pure function of its seed). */
struct FuzzCase
{
    std::uint64_t seed = 0;
    drs::scene::SceneId scene = drs::scene::SceneId::Conference;
    float sceneScale = 0.05f;
    std::size_t bounceIndex = 0;
    std::size_t maxRays = 128;
    Arch arch = Arch::Aila;
    int smxThreadsParallel = 2;
    std::uint64_t sampleInterval = 64;
    std::size_t sampleCapacity = 512;
    drs::harness::RunConfig run;
};

FuzzCase
deriveCase(std::uint64_t seed)
{
    drs::geom::Pcg32 rng(seed);
    FuzzCase c;
    c.seed = seed;

    const auto scenes = drs::scene::allSceneIds();
    c.scene = scenes[rng.nextUInt(static_cast<std::uint32_t>(
        scenes.size()))];
    c.sceneScale = rng.nextUInt(2) == 0 ? 0.05f : 0.1f;
    c.bounceIndex = rng.nextUInt(2);
    c.maxRays = 128 + rng.nextUInt(385); // 128..512

    // Draw the architecture from the registry (in registration order, so
    // a seed replays identically): every registered plugin — including
    // ones added after this tool was written — gets fuzzed.
    const auto &registry = drs::harness::ArchRegistry::instance();
    const auto archs = registry.archs();
    c.arch = archs[rng.nextUInt(static_cast<std::uint32_t>(archs.size()))];
    c.smxThreadsParallel = 2 + static_cast<int>(rng.nextUInt(3)); // 2..4

    c.run.gpu.numSmx = 1 + static_cast<int>(rng.nextUInt(2));
    c.run.check = 1;

    // Randomized profiling: window size 16..512 cycles; a tiny frame
    // budget now and then forces the timeline's coalescing path.
    c.sampleInterval = 16 + rng.nextUInt(497);
    static constexpr std::size_t kCapacityChoices[] = {4, 16, 512};
    c.sampleCapacity = kCapacityChoices[rng.nextUInt(3)];

    // Per-architecture tunables are the plugin's own business: each
    // randomizeConfig consumes the RNG stream deterministically.
    registry.get(c.arch).randomizeConfig(rng, c.run);
    return c;
}

/**
 * Stable digest of a SimStats: FNV-1a over its lossless JSON form. Two
 * runs of the same configuration must print the same digest — the
 * replay regression test (tests/check_fuzz_replay.sh) depends on it.
 */
std::uint64_t
statsDigest(const drs::simt::SimStats &stats)
{
    const std::string text = drs::harness::statsJsonFull(stats).dump();
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char ch : text) {
        hash ^= static_cast<unsigned char>(ch);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
describeCase(const FuzzCase &c)
{
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "seed=0x%016" PRIx64
                  " scene=%s scale=%.2f bounce=%zu rays=%zu arch=%s "
                  "smx=%d threads=%d sample=%" PRIu64 "/%zu",
                  c.seed, drs::scene::sceneName(c.scene).c_str(),
                  static_cast<double>(c.sceneScale), c.bounceIndex,
                  c.maxRays, drs::harness::archName(c.arch).c_str(),
                  c.run.gpu.numSmx, c.smxThreadsParallel,
                  c.sampleInterval, c.sampleCapacity);
    return buffer;
}

/** Run one fuzz case; returns true on success, prints failures. */
bool
runCase(const FuzzCase &c, drs::harness::PreparedSceneCache &cache)
{
    try {
        drs::harness::ExperimentScale scale;
        scale.raysPerBounce = 4096;
        scale.sceneScale = c.sceneScale;
        scale.width = 128;
        scale.height = 96;
        scale.samplesPerPixel = 1;
        scale.maxDepth = 4;
        const drs::harness::PreparedScene &prepared =
            cache.get(c.scene, scale);

        const auto &bounces = prepared.trace.bounces;
        std::size_t index = c.bounceIndex;
        if (index >= bounces.size())
            index = bounces.size() - 1;
        std::span<const drs::geom::Ray> rays(bounces[index].rays);
        if (rays.empty())
            rays = std::span<const drs::geom::Ray>(bounces[0].rays);
        if (rays.size() > c.maxRays)
            rays = rays.first(c.maxRays);

        drs::harness::RunConfig config = c.run;
        config.smxThreads = 1;
        const drs::simt::SimStats sequential =
            runBatch(c.arch, *prepared.tracer, rays, config);

        config.smxThreads = c.smxThreadsParallel;
        const drs::simt::SimStats parallel =
            runBatch(c.arch, *prepared.tracer, rays, config);
        if (!(sequential == parallel)) {
            const std::lock_guard<std::mutex> lock(g_print_mutex);
            std::fprintf(stderr,
                         "FAIL %s: SimStats differ between smxThreads=1 "
                         "and smxThreads=%d\n",
                         describeCase(c).c_str(), c.smxThreadsParallel);
            return false;
        }

        config.smxThreads = 1;
        config.check = 0;
        const drs::simt::SimStats unchecked =
            runBatch(c.arch, *prepared.tracer, rays, config);
        if (!(sequential == unchecked)) {
            const std::lock_guard<std::mutex> lock(g_print_mutex);
            std::fprintf(stderr,
                         "FAIL %s: DRS_CHECK=1 altered SimStats\n",
                         describeCase(c).c_str());
            return false;
        }

        // Profiling must be a pure observer at any window size, and the
        // slot ledger it produces must conserve.
        config.sample.enabled = true;
        config.sample.interval = c.sampleInterval;
        config.sample.capacity = c.sampleCapacity;
        drs::harness::RunObservations observations;
        config.observationsOut = &observations;
        const drs::simt::SimStats sampled =
            runBatch(c.arch, *prepared.tracer, rays, config);
        if (!(unchecked == sampled)) {
            const std::lock_guard<std::mutex> lock(g_print_mutex);
            std::fprintf(stderr, "FAIL %s: sampling altered SimStats\n",
                         describeCase(c).c_str());
            return false;
        }
        if (!observations.attribution || !observations.sampler) {
            const std::lock_guard<std::mutex> lock(g_print_mutex);
            std::fprintf(stderr,
                         "FAIL %s: sampling produced no observations\n",
                         describeCase(c).c_str());
            return false;
        }
        // Throws std::logic_error (caught below) on violation.
        observations.attribution->merged().verifyConservation();
        {
            const std::lock_guard<std::mutex> lock(g_print_mutex);
            std::printf("digest seed=0x%016" PRIx64 " stats=0x%016" PRIx64
                        "\n",
                        c.seed, statsDigest(sequential));
            std::fflush(stdout);
        }
        return true;
    } catch (const std::exception &e) {
        const std::lock_guard<std::mutex> lock(g_print_mutex);
        std::fprintf(stderr, "FAIL %s: %s\n", describeCase(c).c_str(),
                     e.what());
        return false;
    }
}

std::uint64_t
parseU64(const char *text)
{
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "fuzz_sim: not a number: %s\n", text);
        std::exit(2);
    }
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    int configs = 50;
    int jobs = 1;
    std::uint64_t master_seed = 0x5eedULL;
    bool replay = false;
    std::uint64_t replay_seed = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--configs" && has_value) {
            configs = static_cast<int>(parseU64(argv[++i]));
        } else if (arg == "--seed" && has_value) {
            master_seed = parseU64(argv[++i]);
        } else if (arg == "--jobs" && has_value) {
            jobs = static_cast<int>(parseU64(argv[++i]));
        } else if (arg == "--replay" && has_value) {
            replay = true;
            replay_seed = parseU64(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: fuzz_sim [--configs N] [--seed MASTER] "
                         "[--jobs N] [--replay SEED]\n");
            return 2;
        }
    }

    // Derive and print every sub-seed up front, before anything runs: a
    // crash mid-fuzz must not cost the seeds needed to replay it.
    std::vector<std::uint64_t> seeds;
    if (replay) {
        seeds.push_back(replay_seed);
    } else {
        drs::geom::Pcg32 master(master_seed);
        for (int i = 0; i < configs; ++i)
            seeds.push_back((static_cast<std::uint64_t>(master.nextUInt())
                             << 32) |
                            master.nextUInt());
    }
    std::printf("fuzz_sim: %zu configs (master seed 0x%016" PRIx64
                ", jobs %d)\n",
                seeds.size(), master_seed, jobs);
    for (std::size_t i = 0; i < seeds.size(); ++i)
        std::printf("  config %zu: %s\n", i,
                    describeCase(deriveCase(seeds[i])).c_str());
    std::fflush(stdout);

    drs::harness::PreparedSceneCache cache;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> failures{0};

    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= seeds.size())
                return;
            if (!runCase(deriveCase(seeds[i]), cache))
                failures.fetch_add(1);
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        for (int t = 0; t < jobs; ++t)
            threads.emplace_back(worker);
        for (auto &thread : threads)
            thread.join();
    }

    if (failures.load() != 0) {
        std::fprintf(stderr, "fuzz_sim: %zu of %zu configs FAILED\n",
                     failures.load(), seeds.size());
        return 1;
    }
    std::printf("fuzz_sim: all %zu configs passed\n", seeds.size());
    return 0;
}
