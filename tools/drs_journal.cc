/**
 * @file
 * Sweep-journal inspector and verifier. The sweep runner and the fleet
 * coordinator both persist one fsync'd JSONL record per finished job
 * (harness::sweepResultToJson); this tool audits such a journal:
 *
 *   - every line must parse as a well-formed record (a single torn
 *     line at the end of the file is tolerated — that is the expected
 *     debris of a crash mid-append — but torn lines anywhere else are
 *     an error);
 *   - no job index may appear twice — neither as an exact (job, key)
 *     duplicate (some job was double-reported, which the fleet's
 *     drain-before-redispatch logic exists to prevent) nor as the same
 *     index under two different keys (two sweeps interleaved into one
 *     journal); both are hard failures;
 *   - with --expect N, jobs 0..N-1 must all be present: nothing lost.
 *
 * Besides the verdict line the tool prints a per-job summary table
 * (attempts, wall-clock seconds, outcome) so a chaotic run's retry
 * behaviour can be read at a glance.
 *
 * Usage: drs_journal JOURNAL [--expect N]
 *
 * Exit status: 0 = journal verifies, 1 = verification failed,
 * 2 = usage / IO error. The chaos harness (tests/check_fleet_chaos.sh)
 * runs this after a kill → --resume cycle to prove the recovery
 * invariant: every job exactly once.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <utility>

#include "harness/sweep.h"
#include "obs/json.h"

namespace {

int
usage()
{
    std::fprintf(stderr, "usage: drs_journal JOURNAL [--expect N]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    long long expect = -1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--expect") {
            if (i + 1 >= argc)
                return usage();
            char *end = nullptr;
            expect = std::strtoll(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || expect < 0)
                return usage();
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage();
        }
    }
    if (path.empty())
        return usage();

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "drs_journal: cannot open %s\n", path.c_str());
        return 2;
    }

    // (job, key) -> line number of the first record, for duplicate
    // diagnostics.
    std::map<std::pair<std::uint64_t, std::string>, std::size_t> seen;
    // job index -> first record, for the summary table and the
    // same-index-different-key corruption check.
    struct JobRecord
    {
        std::string key;
        int attempts = 0;
        double seconds = 0.0;
        bool ran = false;
        bool failed = false;
        bool fromJournal = false;
    };
    std::map<std::uint64_t, JobRecord> byIndex;
    std::size_t records = 0;
    std::size_t failed = 0;
    std::size_t ran = 0;
    std::size_t torn = 0;
    std::size_t lineNumber = 0;
    std::string line;
    bool ok = true;
    while (std::getline(in, line)) {
        ++lineNumber;
        if (line.empty())
            continue;
        // A torn line that is NOT the last line means the journal was
        // appended past corruption — the writers never do that.
        if (torn > 0) {
            std::fprintf(stderr,
                         "drs_journal: line %zu follows a torn line — "
                         "journal corrupt beyond a crash tail\n",
                         lineNumber);
            ok = false;
        }
        std::string parseError;
        const auto entry = drs::obs::Json::parse(line, &parseError);
        std::uint64_t index = 0;
        std::string key;
        drs::harness::SweepResult result;
        const std::string reason =
            entry ? drs::harness::sweepResultFromJson(*entry, &index, &key,
                                                      &result)
                  : parseError;
        if (!reason.empty()) {
            // Tolerated if it stays the final line (crash mid-append).
            ++torn;
            continue;
        }
        ++records;
        ran += result.ran ? 1 : 0;
        failed += result.failed ? 1 : 0;
        const auto id = std::make_pair(index, key);
        const auto [it, inserted] = seen.emplace(id, lineNumber);
        if (!inserted) {
            std::fprintf(stderr,
                         "drs_journal: job %llu (%s) double-reported: "
                         "lines %zu and %zu\n",
                         static_cast<unsigned long long>(index), key.c_str(),
                         it->second, lineNumber);
            ok = false;
        }
        JobRecord record;
        record.key = key;
        record.attempts = result.attempts;
        record.seconds = result.seconds;
        record.ran = result.ran;
        record.failed = result.failed;
        record.fromJournal = result.fromJournal;
        const auto [jt, fresh] = byIndex.emplace(index, std::move(record));
        if (!fresh && jt->second.key != key) {
            std::fprintf(stderr,
                         "drs_journal: job %llu reported under two keys "
                         "(%s and %s) — journals interleaved?\n",
                         static_cast<unsigned long long>(index),
                         jt->second.key.c_str(), key.c_str());
            ok = false;
        }
    }
    if (torn > 1) {
        std::fprintf(stderr, "drs_journal: %zu torn lines (at most one — a "
                             "crash tail — is expected)\n",
                     torn);
        ok = false;
    }
    if (expect >= 0) {
        for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(expect); ++i) {
            bool present = false;
            for (const auto &[id, where] : seen)
                if (id.first == i) {
                    present = true;
                    break;
                }
            if (!present) {
                std::fprintf(stderr,
                             "drs_journal: job %llu missing (expected jobs "
                             "0..%lld)\n",
                             static_cast<unsigned long long>(i), expect - 1);
                ok = false;
            }
        }
        if (records != static_cast<std::size_t>(expect)) {
            std::fprintf(stderr,
                         "drs_journal: %zu records, expected exactly %lld\n",
                         records, expect);
            ok = false;
        }
    }
    if (!byIndex.empty()) {
        std::size_t keyWidth = 3;
        for (const auto &[index, record] : byIndex)
            keyWidth = std::max(keyWidth, record.key.size());
        std::printf("%6s  %-*s  %8s  %9s  %s\n", "job",
                    static_cast<int>(keyWidth), "key", "attempts",
                    "seconds", "outcome");
        for (const auto &[index, record] : byIndex) {
            const char *outcome = record.failed       ? "quarantined"
                                  : record.fromJournal ? "replayed"
                                  : record.ran         ? "ok"
                                                       : "skipped";
            std::printf("%6llu  %-*s  %8d  %9.3f  %s%s\n",
                        static_cast<unsigned long long>(index),
                        static_cast<int>(keyWidth), record.key.c_str(),
                        record.attempts, record.seconds, outcome,
                        record.attempts > 1 && !record.failed
                            ? " (retried)"
                            : "");
        }
    }
    std::printf("journal %s: %zu records (%zu ran, %zu failed), %zu torn "
                "tail line%s, %zu distinct jobs — %s\n",
                path.c_str(), records, ran, failed, torn,
                torn == 1 ? "" : "s", seen.size(),
                ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
