/**
 * @file
 * Fleet trace stitcher. A fleet run under DRS_TRACE leaves one Chrome
 * trace shard per (worker, job) — obs::TraceCollector files named
 * <trace>.w<worker>.j<job> — plus the coordinator's own job-lifecycle
 * shard <trace>.coord (dispatch→result spans, kill/respawn/redispatch
 * instants). Each shard is internally consistent but uses its own pid
 * namespace (SMX index, or 0 for the coordinator), so loading them
 * together would splice unrelated tracks.
 *
 * This tool merges shards into one Perfetto-loadable document:
 *
 *   - every shard's pids are shifted onto a disjoint range, so no two
 *     shards share a track;
 *   - every process_name metadata record is prefixed with its shard's
 *     basename, so the UI shows "sweep.trc.w1.j3: SMX 0" next to
 *     "sweep.trc.coord: fleet coordinator";
 *   - "otherData.dropped_events" is summed across shards (the merged
 *     trace still passes tests/check_trace.py);
 *   - a torn shard — the expected debris of a SIGKILLed worker dying
 *     mid-write — is skipped with a warning, never a hard error.
 *
 * Timestamps are NOT rebased: worker shards tick in core cycles, the
 * coordinator in wall-clock microseconds (recorded per shard in its
 * own timestamp_unit). The merge is for side-by-side inspection, not
 * cross-shard time alignment.
 *
 * Usage: drs_tracecat -o MERGED.json SHARD.json...
 *
 * Exit status: 0 = merged (>= 1 readable shard), 1 = every shard was
 * unreadable, 2 = usage / cannot write the output.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

int
usage()
{
    std::fprintf(stderr, "usage: drs_tracecat -o MERGED.json SHARD.json...\n");
    return 2;
}

std::string
basenameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o" || arg == "--out") {
            if (i + 1 >= argc)
                return usage();
            outPath = argv[++i];
        } else {
            inputs.push_back(arg);
        }
    }
    if (outPath.empty() || inputs.empty())
        return usage();

    drs::obs::Json merged = drs::obs::Json::object();
    drs::obs::Json &events = merged["traceEvents"];
    events = drs::obs::Json::array();

    std::uint64_t pidBase = 0;
    std::uint64_t droppedTotal = 0;
    std::size_t shardsMerged = 0;
    std::size_t shardsSkipped = 0;
    std::size_t eventCount = 0;

    for (const std::string &path : inputs) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr,
                         "drs_tracecat: skipping %s (cannot open)\n",
                         path.c_str());
            ++shardsSkipped;
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        std::string parseError;
        const auto shard = drs::obs::Json::parse(buffer.str(), &parseError);
        if (!shard || !shard->isObject()) {
            // Torn shard: a worker SIGKILLed mid-write. Expected under
            // chaos; the job was redispatched, its trace is just lost.
            std::fprintf(stderr, "drs_tracecat: skipping torn shard %s (%s)\n",
                         path.c_str(),
                         parseError.empty() ? "not an object"
                                            : parseError.c_str());
            ++shardsSkipped;
            continue;
        }
        const drs::obs::Json *shardEvents = shard->find("traceEvents");
        if (shardEvents == nullptr || !shardEvents->isArray()) {
            std::fprintf(stderr,
                         "drs_tracecat: skipping %s (no traceEvents array)\n",
                         path.c_str());
            ++shardsSkipped;
            continue;
        }
        if (const drs::obs::Json *other = shard->find("otherData"))
            if (const drs::obs::Json *dropped = other->find("dropped_events");
                dropped && dropped->isNumber())
                droppedTotal += dropped->asUint();

        const std::string label = basenameOf(path);
        std::uint64_t maxPid = 0;
        for (const drs::obs::Json &event : shardEvents->asArray()) {
            if (!event.isObject())
                continue;
            drs::obs::Json copy = event;
            std::uint64_t pid = 0;
            if (const drs::obs::Json *p = event.find("pid");
                p && p->isNumber())
                pid = p->asUint();
            if (pid > maxPid)
                maxPid = pid;
            copy["pid"] = drs::obs::Json(pidBase + pid);
            // Qualify process names with the shard so merged tracks
            // stay attributable ("...w1.j3: SMX 0" vs "...coord: ...").
            if (const drs::obs::Json *name = event.find("name");
                name && name->isString() &&
                name->asString() == "process_name")
                if (const drs::obs::Json *args = event.find("args"))
                    if (const drs::obs::Json *pname = args->find("name");
                        pname && pname->isString())
                        copy["args"]["name"] = drs::obs::Json(
                            label + ": " + pname->asString());
            events.push(std::move(copy));
            ++eventCount;
        }
        pidBase += maxPid + 1;
        ++shardsMerged;
    }

    if (shardsMerged == 0) {
        std::fprintf(stderr, "drs_tracecat: no readable shards\n");
        return 1;
    }

    merged["displayTimeUnit"] = drs::obs::Json("ns");
    drs::obs::Json &other = merged["otherData"];
    other = drs::obs::Json::object();
    other["timestamp_unit"] = drs::obs::Json("per shard (see sources)");
    other["dropped_events"] = drs::obs::Json(droppedTotal);
    other["shards_merged"] =
        drs::obs::Json(static_cast<std::uint64_t>(shardsMerged));
    other["shards_skipped"] =
        drs::obs::Json(static_cast<std::uint64_t>(shardsSkipped));

    std::ofstream out(outPath, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "drs_tracecat: cannot open %s for writing\n",
                     outPath.c_str());
        return 2;
    }
    merged.dump(out);
    out << "\n";
    out.flush();
    if (!out) {
        std::fprintf(stderr, "drs_tracecat: write to %s failed\n",
                     outPath.c_str());
        return 2;
    }

    std::printf("merged %zu shard%s (%zu skipped): %zu events, "
                "%llu dropped -> %s\n",
                shardsMerged, shardsMerged == 1 ? "" : "s", shardsSkipped,
                eventCount, static_cast<unsigned long long>(droppedTotal),
                outPath.c_str());
    return 0;
}
