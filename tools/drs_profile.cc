/**
 * @file
 * Offline profile analyzer: turns the schema-v3+ bench reports (and
 * optionally a Chrome trace) into human-readable profiles — per-row
 * issue-slot stall breakdowns, traversal-phase splits, timeline
 * sparklines and hottest-block tables.
 *
 * Usage:
 *   drs_profile BENCH_report.json [more.json ...] [--top N] [--trace T.json]
 *
 * Reports without profiler sections (runs without DRS_SAMPLE) still list
 * their rows, so the tool doubles as a quick report inspector. Exits
 * non-zero on unreadable/invalid input.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"
#include "stats/table.h"

namespace {

using drs::obs::Json;

std::optional<Json>
loadJson(const std::string &path, std::string *why)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *why = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    std::optional<Json> doc = Json::parse(buffer.str(), &error);
    if (!doc)
        *why = path + ": " + error;
    return doc;
}

std::string
stringField(const Json &row, const char *key, const char *fallback = "-")
{
    const Json *v = row.find(key);
    return v && v->isString() ? v->asString() : std::string(fallback);
}

double
numberField(const Json &row, const char *key, double fallback = 0.0)
{
    const Json *v = row.find(key);
    return v && v->isNumber() ? v->asDouble() : fallback;
}

/** Identity columns shared by every per-row table. */
std::vector<std::string>
rowIdentity(const Json &row)
{
    return {stringField(row, "scene"), stringField(row, "arch"),
            stringField(row, "config"), stringField(row, "bounce")};
}

/**
 * Unicode sparkline of @p values scaled to their own maximum (all-zero
 * series render flat).
 */
std::string
sparkline(const std::vector<double> &values)
{
    static const char *kLevels[] = {"▁", "▂", "▃", "▄",
                                    "▅", "▆", "▇", "█"};
    double max = 0.0;
    for (double v : values)
        max = std::max(max, v);
    std::string out;
    for (double v : values) {
        int level = 0;
        if (max > 0.0)
            level = std::min(7, static_cast<int>(v / max * 7.999));
        out += kLevels[level];
    }
    return out;
}

const char *kBucketOrder[] = {"issued_full",       "issued_partial",
                              "stalled_rdctrl",    "stalled_memory",
                              "stalled_scoreboard", "no_ready_warp",
                              "drained"};
const char *kPhaseOrder[] = {"fetch", "inner", "leaf", "none"};

void
printAttributionTables(const Json &results, std::size_t top_k)
{
    drs::stats::Table slots({"scene", "arch", "config", "bounce",
                             "issued_full", "issued_partial",
                             "stalled_rdctrl", "stalled_memory",
                             "stalled_scoreboard", "no_ready_warp",
                             "drained"});
    drs::stats::Table phases({"scene", "arch", "config", "bounce", "fetch",
                              "inner", "leaf", "none"});
    for (const Json &row : results.asArray()) {
        const Json *attribution = row.find("attribution");
        if (!attribution)
            continue;
        const Json *buckets = attribution->find("buckets");
        const double total = numberField(*attribution, "total_slots");
        if (!buckets || total <= 0.0)
            continue;

        std::vector<std::string> slot_row = rowIdentity(row);
        for (const char *name : kBucketOrder) {
            double count = 0.0;
            if (const Json *bucket = buckets->find(name))
                count = numberField(*bucket, "total");
            slot_row.push_back(drs::stats::formatPercent(count / total));
        }
        slots.addRow(std::move(slot_row));

        // Phase split of the issued slots only: where the machine spent
        // the work it actually did.
        std::map<std::string, double> phase_slots;
        double issued = 0.0;
        for (const char *name : {"issued_full", "issued_partial"}) {
            const Json *bucket = buckets->find(name);
            if (!bucket)
                continue;
            for (const char *phase : kPhaseOrder) {
                const double count = numberField(*bucket, phase);
                phase_slots[phase] += count;
                issued += count;
            }
        }
        std::vector<std::string> phase_row = rowIdentity(row);
        for (const char *phase : kPhaseOrder)
            phase_row.push_back(drs::stats::formatPercent(
                issued > 0.0 ? phase_slots[phase] / issued : 0.0));
        phases.addRow(std::move(phase_row));
    }
    if (slots.numRows() == 0) {
        std::cout << "no attribution sections (run the bench with "
                     "DRS_SAMPLE=<cycles> to profile)\n\n";
        return;
    }
    std::cout << "issue-slot breakdown (% of all scheduler slots)\n";
    slots.print(std::cout);
    std::cout << "\ntraversal-phase split of issued slots\n";
    phases.print(std::cout);
    std::cout << "\n";

    drs::stats::Table blocks({"scene", "arch", "config", "bounce", "block",
                              "issues", "avg active"});
    for (const Json &row : results.asArray()) {
        const Json *attribution = row.find("attribution");
        const Json *list = attribution ? attribution->find("blocks") : nullptr;
        if (!list || !list->isArray())
            continue;
        std::size_t shown = 0;
        for (const Json &block : list->asArray()) {
            if (shown++ == top_k)
                break;
            const double issues = numberField(block, "issues");
            const double active = numberField(block, "active_threads");
            std::vector<std::string> block_row = rowIdentity(row);
            block_row.push_back(stringField(block, "name"));
            block_row.push_back(
                std::to_string(static_cast<unsigned long long>(issues)));
            block_row.push_back(drs::stats::formatDouble(
                issues > 0.0 ? active / issues : 0.0, 1));
            blocks.addRow(std::move(block_row));
        }
    }
    if (blocks.numRows() != 0) {
        std::cout << "hottest blocks (by issued instructions)\n";
        blocks.print(std::cout);
        std::cout << "\n";
    }
}

void
printTimelines(const Json &results)
{
    bool any = false;
    for (const Json &row : results.asArray()) {
        const Json *timeline = row.find("timeline");
        const Json *frames = timeline ? timeline->find("frames") : nullptr;
        if (!frames || !frames->isArray() || frames->asArray().empty())
            continue;
        any = true;

        std::vector<double> efficiency;
        std::vector<double> stalled;
        for (const Json &frame : frames->asArray()) {
            efficiency.push_back(numberField(frame, "simd_efficiency"));
            double lost = 0.0, total = 0.0;
            if (const Json *slots = frame.find("slots")) {
                for (const auto &[name, value] : slots->asObject()) {
                    total += value.asDouble();
                    if (std::strncmp(name.c_str(), "issued", 6) != 0)
                        lost += value.asDouble();
                }
            }
            stalled.push_back(total > 0.0 ? lost / total : 0.0);
        }
        std::cout << stringField(row, "scene") << "/"
                  << stringField(row, "arch");
        if (const Json *config = row.find("config"))
            std::cout << "/" << config->asString();
        if (const Json *bounce = row.find("bounce"))
            std::cout << " " << bounce->asString();
        std::cout << "  (" << frames->asArray().size() << " windows of "
                  << static_cast<unsigned long long>(
                         numberField(*timeline, "interval"))
                  << " cycles)\n";
        std::cout << "  simd eff   " << sparkline(efficiency) << "\n";
        std::cout << "  lost slots " << sparkline(stalled) << "\n";
    }
    if (any)
        std::cout << "\n";
}

int
profileReport(const std::string &path, std::size_t top_k)
{
    std::string why;
    std::optional<Json> doc = loadJson(path, &why);
    if (!doc) {
        std::fprintf(stderr, "drs_profile: %s\n", why.c_str());
        return 1;
    }
    if (std::string problem = drs::obs::validateBenchReport(*doc);
        !problem.empty()) {
        std::fprintf(stderr, "drs_profile: %s: %s\n", path.c_str(),
                     problem.c_str());
        return 1;
    }

    std::cout << "==== " << doc->find("bench")->asString() << " (" << path
              << ") ====\n";
    if (const Json *degraded = doc->find("degraded");
        degraded && degraded->asBool())
        std::cout << "WARNING: degraded report (quarantined jobs) — "
                     "numbers are incomplete\n";
    if (const Json *scale = doc->find("scale"); scale && scale->isObject()) {
        std::cout << "scale:";
        for (const auto &[key, value] : scale->asObject())
            std::cout << " " << key << "=" << value.dump();
        std::cout << "\n";
    }
    std::cout << "\n";

    const Json *results = doc->find("results");
    printAttributionTables(*results, top_k);
    printTimelines(*results);
    return 0;
}

int
summarizeTrace(const std::string &path)
{
    std::string why;
    std::optional<Json> doc = loadJson(path, &why);
    if (!doc) {
        std::fprintf(stderr, "drs_profile: %s\n", why.c_str());
        return 1;
    }
    const Json *events = doc->find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr, "drs_profile: %s: no traceEvents array\n",
                     path.c_str());
        return 1;
    }
    std::map<std::string, std::uint64_t> by_name;
    std::uint64_t spans = 0, counters = 0, metadata = 0;
    double last_ts = 0.0;
    for (const Json &event : events->asArray()) {
        const std::string ph = stringField(event, "ph");
        if (ph == "X") {
            ++spans;
            ++by_name[stringField(event, "name")];
            last_ts = std::max(last_ts, numberField(event, "ts") +
                                            numberField(event, "dur"));
        } else if (ph == "C") {
            ++counters;
        } else if (ph == "M") {
            ++metadata;
        }
    }
    std::cout << "==== trace " << path << " ====\n"
              << spans << " spans, " << counters << " counter samples, "
              << metadata << " metadata records, last cycle "
              << static_cast<unsigned long long>(last_ts) << "\n";
    if (const Json *other = doc->find("otherData"))
        if (const Json *dropped = other->find("dropped_events"))
            std::cout << "events dropped to ring wrap: "
                      << dropped->asUint() << "\n";

    std::vector<std::pair<std::string, std::uint64_t>> top(by_name.begin(),
                                                           by_name.end());
    std::stable_sort(top.begin(), top.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    drs::stats::Table table({"span", "count"});
    for (std::size_t i = 0; i < top.size() && i < 10; ++i)
        table.addRow({top[i].first, std::to_string(top[i].second)});
    if (table.numRows() != 0)
        table.print(std::cout);
    std::cout << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> reports;
    std::vector<std::string> traces;
    std::size_t top_k = 8;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--trace" && i + 1 < argc) {
            traces.push_back(argv[++i]);
        } else if (arg == "--top" && i + 1 < argc) {
            const long v = std::strtol(argv[++i], nullptr, 10);
            if (v > 0)
                top_k = static_cast<std::size_t>(v);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: drs_profile BENCH_report.json [...] "
                         "[--top N] [--trace trace.json]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "drs_profile: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            reports.push_back(arg);
        }
    }
    if (reports.empty() && traces.empty()) {
        std::fprintf(stderr,
                     "usage: drs_profile BENCH_report.json [...] "
                     "[--top N] [--trace trace.json]\n");
        return 2;
    }

    int status = 0;
    for (const std::string &path : reports)
        status = std::max(status, profileReport(path, top_k));
    for (const std::string &path : traces)
        status = std::max(status, summarizeTrace(path));
    return status;
}
