/**
 * @file
 * Capture and replay ray traces — the paper's methodology artifact
 * ("we streamed traces of rays captured from PBRT and fed these traces
 * to ray tracing kernels"). Captures a per-bounce trace to disk, then
 * reloads and replays one bounce on a chosen architecture.
 *
 * Usage: trace_capture [scene] [trace-file] [arch] [bounce]
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "harness/harness.h"

int
main(int argc, char **argv)
{
    using namespace drs;

    const std::string scene_name = argc > 1 ? argv[1] : "fairy";
    const std::string path =
        argc > 2 ? argv[2] : (scene_name + ".drstrace");
    const std::string arch_name = argc > 3 ? argv[3] : "drs";
    const int bounce = argc > 4 ? std::atoi(argv[4]) : 2;

    harness::ExperimentScale scale =
        harness::ExperimentScale::fromEnvironment();

    std::cout << "Capturing trace of '" << scene_name << "'...\n";
    harness::PreparedScene prepared =
        harness::prepareScene(scene::sceneFromName(scene_name), scale);
    {
        std::ofstream os(path, std::ios::binary);
        render::save(prepared.trace, os);
    }
    std::cout << "Wrote " << path << " (" << prepared.trace.totalRays()
              << " rays over " << prepared.trace.bounces.size()
              << " bounces)\n";

    std::cout << "Reloading and replaying bounce " << bounce << " on '"
              << arch_name << "'...\n";
    std::ifstream is(path, std::ios::binary);
    const render::RayTrace loaded = render::load(is);

    harness::Arch arch = harness::Arch::Drs;
    for (harness::Arch a : {harness::Arch::Aila, harness::Arch::Drs,
                            harness::Arch::Dmk, harness::Arch::Tbc})
        if (harness::archName(a) == arch_name)
            arch = a;

    harness::RunConfig config;
    config.gpu.numSmx = scale.numSmx;
    const auto stats = harness::runBatch(
        arch, *prepared.tracer, loaded.bounce(bounce).rays, config);

    std::cout << "  rays traced:    " << stats.raysTraced << "\n"
              << "  cycles:         " << stats.cycles << "\n"
              << "  SIMD efficiency " << stats.histogram.simdEfficiency()
              << "\n"
              << "  Mrays/s:        "
              << stats.mraysPerSecond(config.gpu.clockGhz) << "\n"
              << "  L1 tex hit rate " << stats.l1Texture.hitRate() << "\n";
    return 0;
}
