/**
 * @file
 * Divergence lab: a guided tour of why ray tracing starves SIMD units
 * and what dynamic ray shuffling buys back. For one scene it prints, per
 * bounce, the ray coherence, the Aila baseline's Wm:n breakdown (the
 * paper's Figure 1/2 story), and the four architectures' efficiency and
 * throughput side by side — the whole paper in one terminal screen.
 *
 * Usage: divergence_lab [scene] [bounces]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/harness.h"
#include "stats/table.h"

int
main(int argc, char **argv)
{
    using namespace drs;

    const std::string scene_name = argc > 1 ? argv[1] : "sponza";
    const int bounces = argc > 2 ? std::atoi(argv[2]) : 3;

    harness::ExperimentScale scale =
        harness::ExperimentScale::fromEnvironment();
    std::cout << "Preparing '" << scene_name << "'...\n";
    harness::PreparedScene prepared =
        harness::prepareScene(scene::sceneFromName(scene_name), scale);
    harness::RunConfig config;
    config.gpu.numSmx = scale.numSmx;

    std::cout << "\n== Step 1: the workload ==\n";
    stats::Table workload({"bounce", "rays", "direction coherence",
                           "termination rate"});
    for (int b = 1; b <= bounces; ++b) {
        if (static_cast<std::size_t>(b) > prepared.trace.bounces.size())
            break;
        const auto c = prepared.tracer->analyzeCoherence(
            prepared.trace.bounce(b).rays);
        workload.addRow({"B" + std::to_string(b),
                         std::to_string(prepared.trace.bounce(b).size()),
                         stats::formatDouble(c.directionCoherence, 3),
                         stats::formatPercent(c.terminationRate, 1)});
    }
    workload.print(std::cout);
    std::cout << "Primary rays share a direction; bounced rays are\n"
                 "randomized by BSDF sampling. That incoherence is what\n"
                 "breaks warp lockstep.\n";

    std::cout << "\n== Step 2: what it does to a plain SIMT GPU ==\n";
    stats::Table aila_table({"bounce", "SIMD eff", "W1:8", "W25:32",
                             "Mrays/s"});
    for (int b = 1; b <= bounces; ++b) {
        if (static_cast<std::size_t>(b) > prepared.trace.bounces.size())
            break;
        const auto s = harness::runBatch(harness::Arch::Aila,
                                         *prepared.tracer,
                                         prepared.trace.bounce(b).rays,
                                         config);
        aila_table.addRow(
            {"B" + std::to_string(b),
             stats::formatPercent(s.histogram.simdEfficiency()),
             stats::formatPercent(s.histogram.bucketFraction(0)),
             stats::formatPercent(s.histogram.bucketFraction(3)),
             stats::formatDouble(s.mraysPerSecond(config.gpu.clockGhz),
                                 1)});
    }
    aila_table.print(std::cout);
    std::cout << "(Aila's while-while kernel: each warp crawls at the\n"
                 "pace of its slowest ray.)\n";

    std::cout << "\n== Step 3: four ways to fight back ==\n";
    const int b = std::min<int>(
        2, static_cast<int>(prepared.trace.bounces.size()));
    const auto &rays = prepared.trace.bounce(b).rays;
    stats::Table arch_table({"architecture", "SIMD eff", "Mrays/s",
                             "speedup", "notes"});
    double aila_mrays = 0.0;
    for (harness::Arch arch :
         {harness::Arch::Aila, harness::Arch::Dmk, harness::Arch::Tbc,
          harness::Arch::Drs}) {
        const auto s =
            harness::runBatch(arch, *prepared.tracer, rays, config);
        const double mrays = s.mraysPerSecond(config.gpu.clockGhz);
        if (arch == harness::Arch::Aila)
            aila_mrays = mrays;
        std::string notes;
        if (arch == harness::Arch::Dmk)
            notes = stats::formatPercent(s.histogram.spawnFraction()) +
                    " spawn instrs";
        if (arch == harness::Arch::Drs)
            notes = std::to_string(s.raySwapsCompleted) + " ray swaps";
        arch_table.addRow(
            {harness::archName(arch),
             stats::formatPercent(s.histogram.simdEfficiency()),
             stats::formatDouble(mrays, 1),
             stats::formatDouble(mrays / aila_mrays, 2) + "x",
             notes});
    }
    arch_table.print(std::cout);
    std::cout << "\nDRS shuffles ray register data onto state-uniform\n"
                 "rows, so warps almost always run full: highest\n"
                 "efficiency without DMK's instruction overhead or TBC's\n"
                 "block-wide synchronization.\n";
    return 0;
}
