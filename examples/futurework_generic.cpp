/**
 * @file
 * Section 4.6, implemented: dynamic state shuffling applied to a
 * divergent workload that is not ray tracing. A two-phase task kernel
 * with data-dependent trip counts runs (a) as a nested while-while loop
 * on the plain SIMT GPU and (b) as a while-if kernel dispatched by the
 * unmodified DRS control unit — the same ray state table, renaming and
 * swap engine, shuffling tasks instead of rays.
 *
 * Usage: futurework_generic [tasks] [phaseA-max] [phaseB-max]
 */

#include <cstdlib>
#include <iostream>

#include "core/drs_control.h"
#include "kernels/generic_kernel.h"
#include "simt/smx.h"
#include "stats/table.h"

int
main(int argc, char **argv)
{
    using namespace drs;

    kernels::GenericWorkloadConfig workload;
    workload.taskCount = argc > 1 ? static_cast<std::size_t>(
                                        std::atoll(argv[1]))
                                  : 65536;
    workload.phaseAMax = argc > 2 ? std::atoi(argv[2]) : 64;
    workload.phaseBMax = argc > 3 ? std::atoi(argv[3]) : 12;

    const simt::GpuConfig gpu;
    const int warps = 48;

    std::cout << "Two-phase divergent workload: " << workload.taskCount
              << " tasks, phase A trips " << workload.phaseAMin << ".."
              << workload.phaseAMax << ", phase B trips "
              << workload.phaseBMin << ".." << workload.phaseBMax << "\n\n";

    stats::Table table({"dispatch", "SIMD eff", "cycles", "tasks/Kcycle",
                        "speedup"});
    double baseline_rate = 0.0;

    // (a) plain SIMT, nested loops.
    {
        simt::SharedMemorySide shared(gpu.memory);
        kernels::GenericKernel kernel(workload,
                                      kernels::GenericFlavour::WhileWhile,
                                      warps);
        simt::Smx smx(gpu, kernel, nullptr, warps, shared);
        smx.run(4'000'000'000ULL);
        const auto s = smx.collectStats();
        baseline_rate =
            static_cast<double>(s.raysTraced) / s.cycles * 1000.0;
        table.addRow({"while-while (plain SIMT)",
                      stats::formatPercent(s.histogram.simdEfficiency()),
                      std::to_string(s.cycles),
                      stats::formatDouble(baseline_rate, 1), "1.00x"});
    }

    // (b) while-if + the DRS control, shuffling task state.
    {
        core::DrsConfig drs;
        simt::SharedMemorySide shared(gpu.memory);
        kernels::GenericKernel kernel(workload,
                                      kernels::GenericFlavour::WhileIf,
                                      warps + drs.backupRows + 2);
        core::DrsControl control(drs, kernel.workspace(), warps);
        simt::Smx smx(gpu, kernel, &control, warps, shared);
        control.attach(smx);
        smx.run(4'000'000'000ULL);
        const auto s = smx.collectStats();
        const double rate =
            static_cast<double>(s.raysTraced) / s.cycles * 1000.0;
        table.addRow({"while-if + DRS shuffle",
                      stats::formatPercent(s.histogram.simdEfficiency()),
                      std::to_string(s.cycles),
                      stats::formatDouble(rate, 1),
                      stats::formatDouble(rate / baseline_rate, 2) + "x"});
    }

    table.print(std::cout);
    std::cout << "\nThe identical DRS hardware model (ray state table,\n"
                 "warp renaming, swap buffers) schedules these tasks: the\n"
                 "paper's closing claim that the idea generalizes beyond\n"
                 "ray tracing, demonstrated.\n";
    return 0;
}
