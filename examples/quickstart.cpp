/**
 * @file
 * Quickstart: build a scene, capture a ray trace from the path tracer,
 * and compare the software baseline (Aila's while-while kernel) against
 * the DRS architecture on the simulated GPU — the paper's headline
 * experiment in ~60 lines of API use.
 *
 * Usage: quickstart [scene] [rays-per-bounce]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/harness.h"
#include "stats/table.h"

int
main(int argc, char **argv)
{
    using namespace drs;

    const std::string scene_name = argc > 1 ? argv[1] : "conference";
    harness::ExperimentScale scale =
        harness::ExperimentScale::fromEnvironment();
    if (argc > 2)
        scale.raysPerBounce = static_cast<std::size_t>(std::atoll(argv[2]));

    std::cout << "Building scene '" << scene_name << "' (scale "
              << scale.sceneScale << ") ...\n";
    harness::PreparedScene prepared = harness::prepareScene(
        scene::sceneFromName(scene_name), scale);
    std::cout << "  " << prepared.scene().triangleCount() << " triangles, "
              << prepared.trace.bounces.size() << " bounces captured, "
              << prepared.trace.totalRays() << " rays total\n\n";

    harness::RunConfig config;
    config.gpu.numSmx = scale.numSmx;

    stats::Table table({"bounce", "rays", "aila Mrays/s", "aila SIMD",
                        "drs Mrays/s", "drs SIMD", "speedup"});

    const int bounces =
        std::min<int>(4, static_cast<int>(prepared.trace.bounces.size()));
    for (int b = 1; b <= bounces; ++b) {
        const auto &batch = prepared.trace.bounce(b);
        auto aila = harness::runBatch(harness::Arch::Aila, *prepared.tracer,
                                      batch.rays, config);
        auto drs = harness::runBatch(harness::Arch::Drs, *prepared.tracer,
                                     batch.rays, config);
        const double aila_mrays = aila.mraysPerSecond(config.gpu.clockGhz);
        const double drs_mrays = drs.mraysPerSecond(config.gpu.clockGhz);
        table.addRow({"B" + std::to_string(b),
                      std::to_string(batch.rays.size()),
                      stats::formatDouble(aila_mrays, 1),
                      stats::formatPercent(aila.histogram.simdEfficiency()),
                      stats::formatDouble(drs_mrays, 1),
                      stats::formatPercent(drs.histogram.simdEfficiency()),
                      stats::formatDouble(drs_mrays / aila_mrays, 2) + "x"});
    }

    table.print(std::cout);
    std::cout << "\nDone. See bench/ for the full paper reproduction.\n";
    return 0;
}
