/**
 * @file
 * Render any benchmark scene to a PPM image with the host path tracer —
 * the visual counterpart of the paper's Figure 7 and a smoke test that
 * the procedural scenes look like scenes.
 *
 * Usage: render_scene [scene] [output.ppm] [width] [height] [spp]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "render/path_tracer.h"
#include "scene/scenes.h"

int
main(int argc, char **argv)
{
    using namespace drs;

    const std::string scene_name = argc > 1 ? argv[1] : "conference";
    const std::string output =
        argc > 2 ? argv[2] : (scene_name + ".ppm");

    render::RenderConfig config;
    config.width = argc > 3 ? std::atoi(argv[3]) : 320;
    config.height = argc > 4 ? std::atoi(argv[4]) : 240;
    config.samplesPerPixel = argc > 5 ? std::atoi(argv[5]) : 8;

    float scale = 0.25f;
    if (const char *s = std::getenv("DRS_SCALE"))
        scale = std::max(0.01f, static_cast<float>(std::atof(s)));

    std::cout << "Rendering '" << scene_name << "' at " << config.width
              << "x" << config.height << ", " << config.samplesPerPixel
              << " spp...\n";

    const scene::Scene scene =
        scene_name == "test"
            ? scene::makeTestScene()
            : scene::makeScene(scene::sceneFromName(scene_name), scale);
    std::cout << "  " << scene.triangleCount() << " triangles, "
              << scene.emissiveTriangles().size() << " emissive\n";

    render::PathTracer tracer(scene, config);
    const render::Image image = tracer.render();
    if (!image.writePpm(output)) {
        std::cerr << "failed to write " << output << "\n";
        return 1;
    }
    std::cout << "  mean luminance " << image.meanLuminance() << "\n";
    std::cout << "Wrote " << output << "\n";
    return 0;
}
