/**
 * @file
 * Figure 11 — simulated ray tracing performance (Mrays/s) and speedups
 * of DMK, TBC and DRS normalized to Aila's software method, per scene
 * for bounces B1..B3 and overall (B1..B4 aggregate; later bounces behave
 * like B3 per the paper).
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace drs;
    const auto options = bench::parseOptions(argc, argv);
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Figure 11: performance and speedups", scale,
                       options);
    bench::WallTimer timer;

    const harness::Arch archs[] = {harness::Arch::Aila, harness::Arch::Dmk,
                                   harness::Arch::Tbc, harness::Arch::Drs};

    harness::SweepRunner runner(scale, options.jobs,
                                bench::makeSweepOptions(options));
    // indices[scene][arch][bounce]
    std::vector<std::vector<std::vector<std::size_t>>> indices;
    for (scene::SceneId id : scene::allSceneIds()) {
        auto &per_scene = indices.emplace_back();
        for (harness::Arch arch : archs) {
            const auto config = bench::makeRunConfig(scale, options);
            per_scene.push_back(
                runner.addCapture(id, arch, config, bench::kSweepBounces));
        }
    }
    bench::JsonReport report("fig11_speedup", scale, options);
    const auto results = bench::runSweep(runner, options, &report);
    const double clock_ghz = harness::RunConfig{}.gpu.clockGhz;

    double geomean_accumulator[4] = {0, 0, 0, 0};
    int scene_count = 0;

    std::size_t scene_index = 0;
    for (scene::SceneId id : scene::allSceneIds()) {
        stats::Table table({"arch", "B1", "B2", "B3", "overall Mrays/s",
                            "speedup vs aila"});
        double aila_overall = 0.0;
        for (std::size_t a = 0; a < std::size(archs); ++a) {
            const auto capture = harness::collectCapture(
                results, indices[scene_index][a]);
            const double overall = capture.overallMrays(clock_ghz);
            if (archs[a] == harness::Arch::Aila)
                aila_overall = overall;
            auto bounce_mrays = [&](std::size_t b) {
                if (b >= capture.perBounce.size())
                    return std::string("-");
                return stats::formatDouble(
                    capture.perBounce[b].mraysPerSecond(clock_ghz), 1);
            };
            table.addRow({harness::archName(archs[a]), bounce_mrays(0),
                          bounce_mrays(1), bounce_mrays(2),
                          stats::formatDouble(overall, 1),
                          stats::formatDouble(overall / aila_overall, 2) +
                              "x"});
            geomean_accumulator[a] += std::log(overall / aila_overall);

            auto &row = report.addStats(scene::sceneName(id),
                                        harness::archName(archs[a]),
                                        capture.overall, clock_ghz);
            row["mrays_per_s"] = overall;
            row["speedup_vs_aila"] = overall / aila_overall;
        }
        ++scene_count;
        std::cout << "\n--- " << scene::sceneName(id) << " ---\n";
        table.print(std::cout);
        std::cout.flush();
        ++scene_index;
    }

    std::cout << "\nAverage speedup vs Aila (geometric mean over scenes):\n";
    const char *names[] = {"aila", "dmk", "tbc", "drs"};
    for (int i = 0; i < 4; ++i) {
        const double geomean =
            std::exp(geomean_accumulator[i] / scene_count);
        std::cout << "  " << names[i] << ": "
                  << stats::formatDouble(geomean, 2) << "x\n";
        report.summary()[std::string(names[i]) + "_geomean_speedup"] =
            geomean;
    }
    std::cout << "\nPaper: DRS 1.67x-1.92x (1.79x avg); TBC 1.18x avg;\n"
                 "DMK 1.06x avg (slowdown on primary rays).\n\n";
    report.write(timer);
    bench::printElapsed(timer);
    return 0;
}
