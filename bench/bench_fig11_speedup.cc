/**
 * @file
 * Figure 11 — simulated ray tracing performance (Mrays/s) and speedups
 * of DMK, TBC and DRS normalized to Aila's software method, per scene
 * for bounces B1..B3 and overall (B1..B4 aggregate; later bounces behave
 * like B3 per the paper).
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace drs;
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Figure 11: performance and speedups", scale);

    const harness::Arch archs[] = {harness::Arch::Aila, harness::Arch::Dmk,
                                   harness::Arch::Tbc, harness::Arch::Drs};

    double geomean_accumulator[4] = {0, 0, 0, 0};
    int scene_count = 0;

    for (scene::SceneId id : scene::allSceneIds()) {
        auto &prepared = bench::preparedScene(id, scale);
        stats::Table table({"arch", "B1", "B2", "B3", "overall Mrays/s",
                            "speedup vs aila"});
        double aila_overall = 0.0;
        int arch_index = 0;
        for (harness::Arch arch : archs) {
            harness::RunConfig config = bench::makeRunConfig(scale);
            const auto result =
                harness::runCapture(arch, *prepared.tracer, prepared.trace,
                                    config, bench::kSweepBounces);
            const double overall =
                result.overallMrays(config.gpu.clockGhz);
            if (arch == harness::Arch::Aila)
                aila_overall = overall;
            auto bounce_mrays = [&](std::size_t b) {
                if (b >= result.perBounce.size())
                    return std::string("-");
                return stats::formatDouble(
                    result.perBounce[b].mraysPerSecond(config.gpu.clockGhz),
                    1);
            };
            table.addRow({harness::archName(arch), bounce_mrays(0),
                          bounce_mrays(1), bounce_mrays(2),
                          stats::formatDouble(overall, 1),
                          stats::formatDouble(overall / aila_overall, 2) +
                              "x"});
            geomean_accumulator[arch_index++] +=
                std::log(overall / aila_overall);
            std::cout << "." << std::flush;
        }
        ++scene_count;
        std::cout << "\n\n--- " << scene::sceneName(id) << " ---\n";
        table.print(std::cout);
        std::cout.flush();
    }

    std::cout << "\nAverage speedup vs Aila (geometric mean over scenes):\n";
    const char *names[] = {"aila", "dmk", "tbc", "drs"};
    for (int i = 0; i < 4; ++i) {
        std::cout << "  " << names[i] << ": "
                  << stats::formatDouble(
                         std::exp(geomean_accumulator[i] / scene_count), 2)
                  << "x\n";
    }
    std::cout << "\nPaper: DRS 1.67x-1.92x (1.79x avg); TBC 1.18x avg;\n"
                 "DMK 1.06x avg (slowdown on primary rays).\n";
    return 0;
}
