/**
 * @file
 * Figure 8 — simulated ray tracing performance (Mrays/s) for bounces
 * B1..B4 of all four scenes under different backup-row configurations:
 * Aila's software method, idealized DRS, DRS with one backup row carved
 * out of the main register file (58 warps, no extra bank), and DRS with
 * 1/2/4/8 backup rows in an extra register bank (60 warps).
 */

#include <iostream>
#include <vector>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace drs;
    const auto options = bench::parseOptions(argc, argv);
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Figure 8: backup-row configurations (Mrays/s)",
                       scale, options);
    bench::WallTimer timer;

    struct Config
    {
        const char *name;
        bool aila;
        bool ideal;
        bool extraBank;
        int backupRows;
    };
    const Config configs[] = {
        {"aila", true, false, false, 0},
        {"drs-ideal", false, true, false, 1},
        {"1-row(no bank)", false, false, false, 1},
        {"1-row", false, false, true, 1},
        {"2-row", false, false, true, 2},
        {"4-row", false, false, true, 4},
        {"8-row", false, false, true, 8},
    };

    harness::SweepRunner runner(scale, options.jobs,
                                bench::makeSweepOptions(options));

    // The whole figure is one declarative grid: scene x config x bounce.
    std::vector<std::vector<std::vector<std::size_t>>> indices;
    for (scene::SceneId id : scene::allSceneIds()) {
        auto &per_scene = indices.emplace_back();
        for (const Config &c : configs) {
            harness::RunConfig config = bench::makeRunConfig(scale, options);
            config.drs.idealized = c.ideal;
            config.drs.useExtraRegisterBank = c.extraBank;
            config.drs.backupRows = c.backupRows;
            config.drs.swapBuffers = 9; // paper: 9 for this sweep
            per_scene.push_back(runner.addCapture(
                id, c.aila ? harness::Arch::Aila : harness::Arch::Drs,
                config, bench::kSweepBounces));
        }
    }
    bench::JsonReport report("fig8_backup_rows", scale, options);
    const auto results = bench::runSweep(runner, options, &report);
    const double clock_ghz = harness::RunConfig{}.gpu.clockGhz;

    std::size_t scene_index = 0;
    for (scene::SceneId id : scene::allSceneIds()) {
        std::vector<std::string> header = {"config"};
        for (int b = 1; b <= bench::kSweepBounces; ++b)
            header.push_back("B" + std::to_string(b) + " Mrays/s");
        stats::Table table(header);

        for (std::size_t c = 0; c < std::size(configs); ++c) {
            std::vector<std::string> row = {configs[c].name};
            int bounce = 0;
            for (const std::size_t index : indices[scene_index][c]) {
                const auto &result = results[index];
                ++bounce;
                row.push_back(result.ran
                                  ? stats::formatDouble(
                                        result.stats.mraysPerSecond(
                                            clock_ghz),
                                        1)
                                  : std::string("-"));
                if (!result.ran)
                    continue;
                auto &json_row = report.addStats(
                    scene::sceneName(id),
                    configs[c].aila ? "aila" : "drs", result, clock_ghz);
                json_row["config"] = configs[c].name;
                json_row["bounce"] = "B" + std::to_string(bounce);
                json_row["wall_seconds"] = result.seconds;
            }
            table.addRow(std::move(row));
        }
        std::cout << "\n--- " << scene::sceneName(id) << " ---\n";
        table.print(std::cout);
        std::cout.flush();
        ++scene_index;
    }
    std::cout << "\nPaper shape: every DRS configuration clearly beats\n"
                 "Aila on secondary bounces; performance is insensitive to\n"
                 "the backup-row count, and one backup row without an\n"
                 "extra register bank suffices.\n\n";
    report.write(timer);
    bench::printElapsed(timer);
    return 0;
}
