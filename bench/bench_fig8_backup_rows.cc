/**
 * @file
 * Figure 8 — simulated ray tracing performance (Mrays/s) for bounces
 * B1..B4 of all four scenes under different backup-row configurations:
 * Aila's software method, idealized DRS, DRS with one backup row carved
 * out of the main register file (58 warps, no extra bank), and DRS with
 * 1/2/4/8 backup rows in an extra register bank (60 warps).
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace drs;
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Figure 8: backup-row configurations (Mrays/s)",
                       scale);

    struct Config
    {
        const char *name;
        bool aila;
        bool ideal;
        bool extraBank;
        int backupRows;
    };
    const Config configs[] = {
        {"aila", true, false, false, 0},
        {"drs-ideal", false, true, false, 1},
        {"1-row(no bank)", false, false, false, 1},
        {"1-row", false, false, true, 1},
        {"2-row", false, false, true, 2},
        {"4-row", false, false, true, 4},
        {"8-row", false, false, true, 8},
    };

    for (scene::SceneId id : scene::allSceneIds()) {
        auto &prepared = bench::preparedScene(id, scale);
        std::vector<std::string> header = {"config"};
        for (int b = 1; b <= bench::kSweepBounces; ++b)
            header.push_back("B" + std::to_string(b) + " Mrays/s");
        stats::Table table(header);

        for (const Config &c : configs) {
            std::vector<std::string> row = {c.name};
            for (int b = 1; b <= bench::kSweepBounces; ++b) {
                if (static_cast<std::size_t>(b) >
                    prepared.trace.bounces.size()) {
                    row.push_back("-");
                    continue;
                }
                harness::RunConfig config = bench::makeRunConfig(scale);
                config.drs.idealized = c.ideal;
                config.drs.useExtraRegisterBank = c.extraBank;
                config.drs.backupRows = c.backupRows;
                config.drs.swapBuffers = 9; // paper: 9 for this sweep
                const auto stats = harness::runBatch(
                    c.aila ? harness::Arch::Aila : harness::Arch::Drs,
                    *prepared.tracer, prepared.trace.bounce(b).rays,
                    config);
                row.push_back(stats::formatDouble(
                    stats.mraysPerSecond(config.gpu.clockGhz), 1));
                std::cout << "." << std::flush;
            }
            table.addRow(std::move(row));
        }
        std::cout << "\n\n--- " << scene::sceneName(id) << " ---\n";
        table.print(std::cout);
        std::cout.flush();
    }
    std::cout << "\nPaper shape: every DRS configuration clearly beats\n"
                 "Aila on secondary bounces; performance is insensitive to\n"
                 "the backup-row count, and one backup row without an\n"
                 "extra register bank suffices.\n";
    return 0;
}
