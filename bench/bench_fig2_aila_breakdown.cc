/**
 * @file
 * Figure 2 — SIMD efficiency and utilization breakdown of Aila's
 * while-while kernel on the conference room benchmark, per bounce B1..B8.
 * Categories Wm:n are the fraction of issued warp instructions with m..n
 * active threads.
 */

#include <iostream>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace drs;
    const auto options = bench::parseOptions(argc, argv);
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Figure 2: Aila kernel breakdown, conference room",
                       scale, options);
    bench::WallTimer timer;

    harness::SweepRunner runner(scale, options.jobs,
                                bench::makeSweepOptions(options));
    const auto config = bench::makeRunConfig(scale, options);
    // One job per captured bounce (up to the scale's max depth; bounces
    // the capture does not reach come back with ran = false).
    const auto indices = runner.addCapture(scene::SceneId::Conference,
                                           harness::Arch::Aila, config);
    bench::JsonReport report("fig2_aila_breakdown", scale, options);
    const auto results = bench::runSweep(runner, options, &report);
    const auto &prepared = runner.prepared(scene::SceneId::Conference);

    stats::Table table({"bounce", "rays", "SIMD eff", "W1:8", "W9:16",
                        "W17:24", "W25:32"});
    const double clock_ghz = harness::RunConfig{}.gpu.clockGhz;
    for (std::size_t b = 0; b < indices.size(); ++b) {
        const auto &result = results[indices[b]];
        if (!result.ran)
            continue;
        const auto &stats = result.stats;
        const int bounce = static_cast<int>(b) + 1;
        table.addRow({"B" + std::to_string(bounce),
                      std::to_string(prepared.trace.bounce(bounce).size()),
                      stats::formatPercent(stats.histogram.simdEfficiency()),
                      stats::formatPercent(stats.histogram.bucketFraction(0)),
                      stats::formatPercent(stats.histogram.bucketFraction(1)),
                      stats::formatPercent(stats.histogram.bucketFraction(2)),
                      stats::formatPercent(stats.histogram.bucketFraction(3))});

        auto &row = report.addStats(scene::sceneName(scene::SceneId::Conference),
                                    "aila", result, clock_ghz);
        row["bounce"] = "B" + std::to_string(bounce);
        row["wall_seconds"] = result.seconds;
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nPaper shape: B1 efficiency is high (79-92%); secondary\n"
                 "bounces collapse (28-36% for conference) with most\n"
                 "instructions in the W1:8 bucket.\n\n";
    report.write(timer);
    bench::printElapsed(timer);
    return 0;
}
