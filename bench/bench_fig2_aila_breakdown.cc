/**
 * @file
 * Figure 2 — SIMD efficiency and utilization breakdown of Aila's
 * while-while kernel on the conference room benchmark, per bounce B1..B8.
 * Categories Wm:n are the fraction of issued warp instructions with m..n
 * active threads.
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace drs;
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Figure 2: Aila kernel breakdown, conference room",
                       scale);

    auto &prepared =
        bench::preparedScene(scene::SceneId::Conference, scale);
    const auto config = bench::makeRunConfig(scale);

    stats::Table table({"bounce", "rays", "SIMD eff", "W1:8", "W9:16",
                        "W17:24", "W25:32"});
    for (const auto &bounce : prepared.trace.bounces) {
        if (bounce.empty())
            continue;
        const auto stats = harness::runBatch(
            harness::Arch::Aila, *prepared.tracer, bounce.rays, config);
        table.addRow({"B" + std::to_string(bounce.bounce),
                      std::to_string(bounce.size()),
                      stats::formatPercent(stats.histogram.simdEfficiency()),
                      stats::formatPercent(stats.histogram.bucketFraction(0)),
                      stats::formatPercent(stats.histogram.bucketFraction(1)),
                      stats::formatPercent(stats.histogram.bucketFraction(2)),
                      stats::formatPercent(stats.histogram.bucketFraction(3))});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    table.print(std::cout);
    std::cout << "\nPaper shape: B1 efficiency is high (79-92%); secondary\n"
                 "bounces collapse (28-36% for conference) with most\n"
                 "instructions in the W1:8 bucket.\n";
    return 0;
}
