/**
 * @file
 * Figure 9 — warp issue stall rate of the rdctrl instruction in the
 * conference room and fairy forest benchmarks for 1/2/4/8 backup rows.
 * The paper's point: one backup row stalls 83.5-93.45% of rdctrl issues,
 * eight rows at most 4.81% — yet performance barely changes because
 * stalls are short and other warps fill the pipeline.
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace drs;
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Figure 9: rdctrl warp-issue stall rate", scale);

    const int backup_rows[] = {1, 2, 4, 8};
    for (scene::SceneId id :
         {scene::SceneId::Conference, scene::SceneId::Fairy}) {
        auto &prepared = bench::preparedScene(id, scale);
        std::vector<std::string> header = {"backup rows"};
        for (int b = 1; b <= bench::kSweepBounces; ++b) {
            header.push_back("B" + std::to_string(b) + " stall");
            header.push_back("B" + std::to_string(b) + " Mrays/s");
        }
        stats::Table table(header);

        for (int rows : backup_rows) {
            std::vector<std::string> row = {std::to_string(rows)};
            for (int b = 1; b <= bench::kSweepBounces; ++b) {
                if (static_cast<std::size_t>(b) >
                    prepared.trace.bounces.size()) {
                    row.push_back("-");
                    row.push_back("-");
                    continue;
                }
                harness::RunConfig config = bench::makeRunConfig(scale);
                config.drs.backupRows = rows;
                config.drs.useExtraRegisterBank = true;
                config.drs.swapBuffers = 9;
                const auto stats = harness::runBatch(
                    harness::Arch::Drs, *prepared.tracer,
                    prepared.trace.bounce(b).rays, config);
                row.push_back(
                    stats::formatPercent(stats.rdctrlStallRate(), 1));
                row.push_back(stats::formatDouble(
                    stats.mraysPerSecond(config.gpu.clockGhz), 1));
                std::cout << "." << std::flush;
            }
            table.addRow(std::move(row));
        }
        std::cout << "\n\n--- " << scene::sceneName(id) << " ---\n";
        table.print(std::cout);
        std::cout.flush();
    }
    std::cout << "\nPaper shape: the stall rate falls steeply with more\n"
                 "backup rows while Mrays/s stays nearly flat.\n";
    return 0;
}
