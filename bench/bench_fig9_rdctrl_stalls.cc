/**
 * @file
 * Figure 9 — warp issue stall rate of the rdctrl instruction in the
 * conference room and fairy forest benchmarks for 1/2/4/8 backup rows.
 * The paper's point: one backup row stalls 83.5-93.45% of rdctrl issues,
 * eight rows at most 4.81% — yet performance barely changes because
 * stalls are short and other warps fill the pipeline.
 */

#include <iostream>
#include <vector>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace drs;
    const auto options = bench::parseOptions(argc, argv);
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Figure 9: rdctrl warp-issue stall rate", scale,
                       options);
    bench::WallTimer timer;

    const int backup_rows[] = {1, 2, 4, 8};
    const scene::SceneId scenes[] = {scene::SceneId::Conference,
                                     scene::SceneId::Fairy};

    harness::SweepRunner runner(scale, options.jobs,
                                bench::makeSweepOptions(options));
    std::vector<std::vector<std::vector<std::size_t>>> indices;
    for (scene::SceneId id : scenes) {
        auto &per_scene = indices.emplace_back();
        for (int rows : backup_rows) {
            harness::RunConfig config = bench::makeRunConfig(scale, options);
            config.drs.backupRows = rows;
            config.drs.useExtraRegisterBank = true;
            config.drs.swapBuffers = 9;
            per_scene.push_back(runner.addCapture(id, harness::Arch::Drs,
                                                  config,
                                                  bench::kSweepBounces));
        }
    }
    bench::JsonReport report("fig9_rdctrl_stalls", scale, options);
    const auto results = bench::runSweep(runner, options, &report);
    const double clock_ghz = harness::RunConfig{}.gpu.clockGhz;

    std::size_t scene_index = 0;
    for (scene::SceneId id : scenes) {
        std::vector<std::string> header = {"backup rows"};
        for (int b = 1; b <= bench::kSweepBounces; ++b) {
            header.push_back("B" + std::to_string(b) + " stall");
            header.push_back("B" + std::to_string(b) + " Mrays/s");
        }
        stats::Table table(header);

        for (std::size_t r = 0; r < std::size(backup_rows); ++r) {
            std::vector<std::string> row = {std::to_string(backup_rows[r])};
            int bounce = 0;
            for (const std::size_t index : indices[scene_index][r]) {
                const auto &result = results[index];
                ++bounce;
                if (!result.ran) {
                    row.push_back("-");
                    row.push_back("-");
                    continue;
                }
                row.push_back(
                    stats::formatPercent(result.stats.rdctrlStallRate(), 1));
                row.push_back(stats::formatDouble(
                    result.stats.mraysPerSecond(clock_ghz), 1));

                auto &json_row = report.addStats(scene::sceneName(id),
                                                 "drs", result, clock_ghz);
                json_row["config"] =
                    std::to_string(backup_rows[r]) + "-row";
                json_row["bounce"] = "B" + std::to_string(bounce);
                json_row["wall_seconds"] = result.seconds;
            }
            table.addRow(std::move(row));
        }
        std::cout << "\n--- " << scene::sceneName(id) << " ---\n";
        table.print(std::cout);
        std::cout.flush();
        ++scene_index;
    }
    std::cout << "\nPaper shape: the stall rate falls steeply with more\n"
                 "backup rows while Mrays/s stays nearly flat.\n\n";
    report.write(timer);
    bench::printElapsed(timer);
    return 0;
}
