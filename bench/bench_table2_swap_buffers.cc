/**
 * @file
 * Table 2 — ray tracing performance with 6/9/12/18 swap buffers, plus
 * the mean ray-swap duration the paper quotes in the accompanying text
 * (31.6 / 25.0 / 24.3 / 22.0 cycles).
 */

#include <iostream>
#include <vector>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace drs;
    const auto options = bench::parseOptions(argc, argv);
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Table 2: swap-buffer configurations", scale,
                       options);
    bench::WallTimer timer;

    const int buffer_configs[] = {6, 9, 12, 18};

    harness::SweepRunner runner(scale, options.jobs,
                                bench::makeSweepOptions(options));
    // indices[scene][buffer-config][bounce]
    std::vector<std::vector<std::vector<std::size_t>>> indices;
    for (scene::SceneId id : scene::allSceneIds()) {
        auto &per_scene = indices.emplace_back();
        for (const int buffers : buffer_configs) {
            harness::RunConfig config = bench::makeRunConfig(scale, options);
            config.drs.swapBuffers = buffers;
            per_scene.push_back(runner.addCapture(id, harness::Arch::Drs,
                                                  config,
                                                  bench::kSweepBounces));
        }
    }
    bench::JsonReport report("table2_swap_buffers", scale, options);
    const auto results = bench::runSweep(runner, options, &report);
    const double clock_ghz = harness::RunConfig{}.gpu.clockGhz;

    std::vector<double> mean_swap_cycles(4, 0.0);
    std::vector<int> mean_swap_samples(4, 0);

    std::size_t scene_index = 0;
    for (scene::SceneId id : scene::allSceneIds()) {
        stats::Table table({"bounce", "#6", "#9", "#12", "#18"});
        for (int b = 1; b <= bench::kSweepBounces; ++b) {
            const auto bounce_slot = static_cast<std::size_t>(b - 1);
            if (!results[indices[scene_index][0][bounce_slot]].ran)
                break;
            std::vector<std::string> row = {"B" + std::to_string(b)};
            for (std::size_t i = 0; i < std::size(buffer_configs); ++i) {
                const auto &result =
                    results[indices[scene_index][i][bounce_slot]];
                row.push_back(stats::formatDouble(
                    result.stats.mraysPerSecond(clock_ghz), 2));
                if (result.stats.raySwapsCompleted > 0) {
                    mean_swap_cycles[i] += result.stats.meanSwapCycles();
                    mean_swap_samples[i] += 1;
                }
                auto &json_row = report.addStats(scene::sceneName(id),
                                                 "drs", result, clock_ghz);
                json_row["config"] =
                    std::to_string(buffer_configs[i]) + "-buffers";
                json_row["bounce"] = "B" + std::to_string(b);
                json_row["wall_seconds"] = result.seconds;
            }
            table.addRow(std::move(row));
        }
        std::cout << "\n--- " << scene::sceneName(id)
                  << " (Mrays/s) ---\n";
        table.print(std::cout);
        std::cout.flush();
        ++scene_index;
    }

    std::cout << "\nMean ray-swap duration (paper: 31.6 / 25.0 / 24.3 / "
                 "22.0 cycles):\n";
    for (std::size_t i = 0; i < std::size(buffer_configs); ++i) {
        const int n = mean_swap_samples[i];
        std::cout << "  " << buffer_configs[i] << " buffers: "
                  << stats::formatDouble(
                         n ? mean_swap_cycles[i] / n : 0.0, 1)
                  << " cycles\n";
    }
    std::cout << "\nPaper shape: performance differences between buffer\n"
                 "configurations are minimal; swap duration shrinks only\n"
                 "mildly with more buffers (register-bank conflicts).\n\n";
    report.write(timer);
    bench::printElapsed(timer);
    return 0;
}
