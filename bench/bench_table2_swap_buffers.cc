/**
 * @file
 * Table 2 — ray tracing performance with 6/9/12/18 swap buffers, plus
 * the mean ray-swap duration the paper quotes in the accompanying text
 * (31.6 / 25.0 / 24.3 / 22.0 cycles).
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace drs;
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Table 2: swap-buffer configurations", scale);

    const int buffer_configs[] = {6, 9, 12, 18};
    std::vector<double> mean_swap_cycles(4, 0.0);
    std::vector<int> mean_swap_samples(4, 0);

    for (scene::SceneId id : scene::allSceneIds()) {
        auto &prepared = bench::preparedScene(id, scale);
        stats::Table table({"bounce", "#6", "#9", "#12", "#18"});
        for (int b = 1; b <= bench::kSweepBounces; ++b) {
            if (static_cast<std::size_t>(b) > prepared.trace.bounces.size())
                break;
            std::vector<std::string> row = {"B" + std::to_string(b)};
            for (int i = 0; i < 4; ++i) {
                harness::RunConfig config = bench::makeRunConfig(scale);
                config.drs.swapBuffers = buffer_configs[i];
                const auto stats = harness::runBatch(
                    harness::Arch::Drs, *prepared.tracer,
                    prepared.trace.bounce(b).rays, config);
                row.push_back(stats::formatDouble(
                    stats.mraysPerSecond(config.gpu.clockGhz), 2));
                if (stats.raySwapsCompleted > 0) {
                    mean_swap_cycles[static_cast<std::size_t>(i)] +=
                        stats.meanSwapCycles();
                    mean_swap_samples[static_cast<std::size_t>(i)] += 1;
                }
                std::cout << "." << std::flush;
            }
            table.addRow(std::move(row));
        }
        std::cout << "\n\n--- " << scene::sceneName(id)
                  << " (Mrays/s) ---\n";
        table.print(std::cout);
        std::cout.flush();
    }

    std::cout << "\nMean ray-swap duration (paper: 31.6 / 25.0 / 24.3 / "
                 "22.0 cycles):\n";
    for (int i = 0; i < 4; ++i) {
        const int n = mean_swap_samples[static_cast<std::size_t>(i)];
        std::cout << "  " << buffer_configs[i] << " buffers: "
                  << stats::formatDouble(
                         n ? mean_swap_cycles[static_cast<std::size_t>(i)] / n
                           : 0.0,
                         1)
                  << " cycles\n";
    }
    std::cout << "\nPaper shape: performance differences between buffer\n"
                 "configurations are minimal; swap duration shrinks only\n"
                 "mildly with more buffers (register-bank conflicts).\n";
    return 0;
}
