/**
 * @file
 * Figure 7 — benchmark scenes. The paper shows renderings and triangle
 * counts; this bench prints each generated scene's statistics (triangles,
 * BVH shape, light count) plus the per-bounce ray-coherence properties
 * the experiments rely on. The example binaries render actual images.
 */

#include <iostream>

#include "bench_common.h"
#include "bvh/traverse.h"
#include "geom/rng.h"

int
main(int argc, char **argv)
{
    using namespace drs;
    const auto options = bench::parseOptions(argc, argv);
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Figure 7: benchmark scenes", scale, options);
    bench::WallTimer timer;

    // No simulations here, but scene building and ray capture still
    // dominate: warm the cache by preparing all scenes concurrently.
    harness::PreparedSceneCache cache;
    {
        exec::ThreadPool pool(options.jobs);
        exec::TaskGroup group(pool);
        for (scene::SceneId id : scene::allSceneIds())
            group.run([&cache, &scale, id] { cache.get(id, scale); });
        group.wait();
    }

    stats::Table table({"scene", "triangles", "paper tris", "BVH nodes",
                        "depth", "tris/leaf", "B1 coherence",
                        "B2 coherence", "B2 termination"});
    const char *paper_tris[] = {"283K", "174K", "262K", "1.1M"};
    bench::JsonReport report("fig7_scenes", scale, options);

    int index = 0;
    for (scene::SceneId id : scene::allSceneIds()) {
        const auto &prepared = cache.get(id, scale);
        const auto tree = prepared.tracer->bvh().computeStats();
        const auto b1 =
            prepared.tracer->analyzeCoherence(prepared.trace.bounce(1).rays);
        render::CoherenceStats b2;
        if (prepared.trace.bounces.size() > 1)
            b2 = prepared.tracer->analyzeCoherence(
                prepared.trace.bounce(2).rays);
        table.addRow({scene::sceneName(id),
                      std::to_string(prepared.scene().triangleCount()),
                      paper_tris[index++],
                      std::to_string(tree.nodeCount),
                      std::to_string(tree.maxDepth),
                      stats::formatDouble(tree.meanLeafTriangles, 1),
                      stats::formatDouble(b1.directionCoherence, 3),
                      stats::formatDouble(b2.directionCoherence, 3),
                      stats::formatPercent(b2.terminationRate, 1)});

        auto &row = report.addRow();
        row["scene"] = scene::sceneName(id);
        row["triangles"] = prepared.scene().triangleCount();
        row["bvh_nodes"] = tree.nodeCount;
        row["bvh_depth"] = tree.maxDepth;
        row["mean_leaf_triangles"] = tree.meanLeafTriangles;
        row["b1_coherence"] = b1.directionCoherence;
        row["b2_coherence"] = b2.directionCoherence;
        row["b2_termination_rate"] = b2.terminationRate;
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nGenerated stand-ins reproduce the paper's scene\n"
                 "character: coherent primaries, incoherent secondaries,\n"
                 "easy termination for conference/fairy (lights/sky above),\n"
                 "hard termination for sponza (enclosed) and plants\n"
                 "(occluding foliage). Run `examples/render_scene <name>`\n"
                 "for images.\n\n";
    report.write(timer);
    bench::printElapsed(timer);
    return 0;
}
