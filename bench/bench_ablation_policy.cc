/**
 * @file
 * Ablation — the DRS dispatch-policy knobs this reproduction adds on top
 * of the paper's textual description (see DESIGN.md section 5/6):
 * minority tolerance, batched hole-refill threshold, full-dispatch
 * circulation target, and idealized shuffling, measured on the
 * conference room's second bounce (the worst-case incoherent workload).
 */

#include <iostream>
#include <vector>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace drs;
    const auto options = bench::parseOptions(argc, argv);
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Ablation: DRS dispatch-policy knobs", scale,
                       options);
    bench::WallTimer timer;

    struct Variant
    {
        const char *name;
        int tolerance;
        int refill;
        int target;
        bool ideal;
    };
    const Variant variants[] = {
        {"strict (paper text)", 0, 32, 0, false},
        {"tolerance only", 7, 32, 0, false},
        {"refill only", 0, 4, 0, false},
        {"tolerance+refill", 7, 4, 0, false},
        {"default (tol+refill+circulate)", 7, 4, 26, false},
        {"idealized shuffle", 7, 4, 26, true},
    };

    harness::SweepRunner runner(scale, options.jobs,
                                bench::makeSweepOptions(options));
    std::vector<std::size_t> variant_indices;
    for (const Variant &v : variants) {
        harness::RunConfig config = bench::makeRunConfig(scale, options);
        config.drs.dispatchMinorityTolerance = v.tolerance;
        config.drs.fetchRefillThreshold = v.refill;
        config.drs.fullDispatchTarget = v.target;
        config.drs.idealized = v.ideal;
        harness::SweepJob job;
        job.scene = scene::SceneId::Conference;
        job.arch = harness::Arch::Drs;
        job.config = config;
        job.bounce = 2;
        variant_indices.push_back(runner.add(job));
    }
    // Aila reference for context rides along in the same sweep.
    harness::SweepJob aila_job;
    aila_job.scene = scene::SceneId::Conference;
    aila_job.arch = harness::Arch::Aila;
    aila_job.config = bench::makeRunConfig(scale, options);
    aila_job.bounce = 2;
    const std::size_t aila_index = runner.add(aila_job);

    bench::JsonReport report("ablation_policy", scale, options);
    const auto results = bench::runSweep(runner, options, &report);
    const harness::RunConfig defaults = bench::makeRunConfig(scale, options);
    const std::string conference =
        scene::sceneName(scene::SceneId::Conference);

    stats::Table table({"variant", "SIMD eff", "issue util", "stall rate",
                        "Mrays/s"});
    for (std::size_t v = 0; v < std::size(variants); ++v) {
        const auto &result = results[variant_indices[v]];
        const auto &stats = result.stats;
        const double util =
            static_cast<double>(stats.histogram.instructions()) /
            (static_cast<double>(stats.cycles) *
             defaults.gpu.dispatchUnitsPerSmx * defaults.gpu.numSmx);
        table.addRow({variants[v].name,
                      stats::formatPercent(stats.histogram.simdEfficiency()),
                      stats::formatPercent(util),
                      stats::formatPercent(stats.rdctrlStallRate()),
                      stats::formatDouble(
                          stats.mraysPerSecond(defaults.gpu.clockGhz), 1)});
        auto &json_row = report.addStats(conference, "drs", result,
                                         defaults.gpu.clockGhz);
        json_row["config"] = variants[v].name;
        json_row["bounce"] = "B2";
        json_row["issue_utilization"] = util;
    }
    std::cout << "\n";
    table.print(std::cout);

    const auto &aila = results[aila_index].stats;
    auto &aila_row = report.addStats(conference, "aila",
                                     results[aila_index],
                                     defaults.gpu.clockGhz);
    aila_row["config"] = "aila reference";
    aila_row["bounce"] = "B2";
    std::cout << "\nAila reference: "
              << stats::formatDouble(
                     aila.mraysPerSecond(defaults.gpu.clockGhz), 1)
              << " Mrays/s at "
              << stats::formatPercent(aila.histogram.simdEfficiency())
              << " SIMD efficiency\n\n";
    report.write(timer);
    bench::printElapsed(timer);
    return 0;
}
