/**
 * @file
 * Ablation — the DRS dispatch-policy knobs this reproduction adds on top
 * of the paper's textual description (see DESIGN.md section 5/6):
 * minority tolerance, batched hole-refill threshold, full-dispatch
 * circulation target, and idealized shuffling, measured on the
 * conference room's second bounce (the worst-case incoherent workload).
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace drs;
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Ablation: DRS dispatch-policy knobs", scale);

    auto &prepared =
        bench::preparedScene(scene::SceneId::Conference, scale);
    const auto &rays = prepared.trace.bounce(2).rays;

    struct Variant
    {
        const char *name;
        int tolerance;
        int refill;
        int target;
        bool ideal;
    };
    const Variant variants[] = {
        {"strict (paper text)", 0, 32, 0, false},
        {"tolerance only", 7, 32, 0, false},
        {"refill only", 0, 4, 0, false},
        {"tolerance+refill", 7, 4, 0, false},
        {"default (tol+refill+circulate)", 7, 4, 26, false},
        {"idealized shuffle", 7, 4, 26, true},
    };

    stats::Table table({"variant", "SIMD eff", "issue util", "stall rate",
                        "Mrays/s"});
    for (const Variant &v : variants) {
        harness::RunConfig config = bench::makeRunConfig(scale);
        config.drs.dispatchMinorityTolerance = v.tolerance;
        config.drs.fetchRefillThreshold = v.refill;
        config.drs.fullDispatchTarget = v.target;
        config.drs.idealized = v.ideal;
        const auto stats = harness::runBatch(
            harness::Arch::Drs, *prepared.tracer, rays, config);
        const double util =
            static_cast<double>(stats.histogram.instructions()) /
            (static_cast<double>(stats.cycles) *
             config.gpu.dispatchUnitsPerSmx * config.gpu.numSmx);
        table.addRow({v.name,
                      stats::formatPercent(stats.histogram.simdEfficiency()),
                      stats::formatPercent(util),
                      stats::formatPercent(stats.rdctrlStallRate()),
                      stats::formatDouble(
                          stats.mraysPerSecond(config.gpu.clockGhz), 1)});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    table.print(std::cout);

    // Aila reference for context.
    harness::RunConfig config = bench::makeRunConfig(scale);
    const auto aila = harness::runBatch(harness::Arch::Aila,
                                        *prepared.tracer, rays, config);
    std::cout << "\nAila reference: "
              << stats::formatDouble(
                     aila.mraysPerSecond(config.gpu.clockGhz), 1)
              << " Mrays/s at "
              << stats::formatPercent(aila.histogram.simdEfficiency())
              << " SIMD efficiency\n";
    return 0;
}
