/**
 * @file
 * Reordering survey — every architecture in the plugin registry (the
 * paper's lineup plus the software ray-reordering competitors) on every
 * scene: per-bounce and overall Mrays/s, SIMD efficiency, and speedup
 * normalized to Aila's unsorted software baseline. The lineup is
 * enumerated from ArchRegistry, so registering a new architecture adds
 * it to this survey without touching the bench.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "harness/arch_plugin.h"

int
main(int argc, char **argv)
{
    using namespace drs;
    const auto options = bench::parseOptions(argc, argv);
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Reordering survey: hardware vs software ray "
                       "reordering",
                       scale, options);
    bench::WallTimer timer;

    const auto &registry = harness::ArchRegistry::instance();
    const std::vector<harness::Arch> archs = registry.archs();

    std::cout << "architectures (from the plugin registry):\n";
    for (const harness::ArchPlugin *plugin : registry.plugins())
        std::cout << "  " << plugin->name() << ": " << plugin->description()
                  << "\n";
    std::cout << "\n";

    harness::SweepRunner runner(scale, options.jobs,
                                bench::makeSweepOptions(options));
    // indices[scene][arch][bounce]
    std::vector<std::vector<std::vector<std::size_t>>> indices;
    for (scene::SceneId id : scene::allSceneIds()) {
        auto &per_scene = indices.emplace_back();
        for (const harness::Arch &arch : archs) {
            const auto config = bench::makeRunConfig(scale, options);
            per_scene.push_back(
                runner.addCapture(id, arch, config, bench::kSweepBounces));
        }
    }
    bench::JsonReport report("reorder_survey", scale, options);
    const auto results = bench::runSweep(runner, options, &report);
    const double clock_ghz = harness::RunConfig{}.gpu.clockGhz;

    obs::Json &lineup = report.summary()["architectures"];
    lineup = obs::Json::array();
    for (const harness::ArchPlugin *plugin : registry.plugins()) {
        obs::Json &entry = lineup.push(obs::Json::object());
        entry["arch"] = plugin->name();
        entry["description"] = plugin->description();
        entry["counter_namespace"] = plugin->counterNamespace();
    }

    std::vector<double> geomean_accumulator(archs.size(), 0.0);
    // Scenes contributing a valid ratio, per arch: a degraded run (zero
    // cycles, watchdog abort) yields 0 or NaN Mrays/s, and log() of a
    // non-positive ratio would poison the whole geomean with -inf/NaN.
    std::vector<int> geomean_scenes(archs.size(), 0);

    std::size_t scene_index = 0;
    for (scene::SceneId id : scene::allSceneIds()) {
        stats::Table table({"arch", "B1", "B2", "B3", "overall Mrays/s",
                            "SIMD eff", "speedup vs aila"});
        double aila_overall = 0.0;
        for (std::size_t a = 0; a < archs.size(); ++a) {
            const auto capture = harness::collectCapture(
                results, indices[scene_index][a]);
            const double overall = capture.overallMrays(clock_ghz);
            if (archs[a] == harness::Arch::Aila)
                aila_overall = overall;
            auto bounce_mrays = [&](std::size_t b) {
                if (b >= capture.perBounce.size())
                    return std::string("-");
                return stats::formatDouble(
                    capture.perBounce[b].mraysPerSecond(clock_ghz), 1);
            };
            const double ratio =
                aila_overall > 0.0 ? overall / aila_overall : 0.0;
            table.addRow(
                {archs[a].name(), bounce_mrays(0), bounce_mrays(1),
                 bounce_mrays(2), stats::formatDouble(overall, 1),
                 stats::formatDouble(
                     capture.overall.histogram.simdEfficiency(), 3),
                 stats::formatDouble(ratio, 2) + "x"});
            if (ratio > 0.0 && std::isfinite(ratio)) {
                geomean_accumulator[a] += std::log(ratio);
                ++geomean_scenes[a];
            } else {
                std::cout << "warning: " << archs[a].name() << " on "
                          << scene::sceneName(id)
                          << " produced a non-positive speedup ratio ("
                          << ratio << "); excluded from the geomean\n";
            }

            auto &row = report.addStats(scene::sceneName(id),
                                        archs[a].name(), capture.overall,
                                        clock_ghz);
            row["mrays_per_s"] = overall;
            row["speedup_vs_aila"] = ratio;
            // The software reorderers publish what the pass did through
            // their counter namespace; surface it as first-class fields.
            if (capture.overall.counters.contains("reorder.rays")) {
                row["reorder_distinct_keys"] =
                    capture.overall.counters.value("reorder.distinct_keys");
                row["reorder_displacement_sum"] =
                    capture.overall.counters.value(
                        "reorder.displacement_sum");
            }
        }
        std::cout << "\n--- " << scene::sceneName(id) << " ---\n";
        table.print(std::cout);
        std::cout.flush();
        ++scene_index;
    }

    std::cout << "\nAverage speedup vs Aila (geometric mean over scenes):\n";
    for (std::size_t a = 0; a < archs.size(); ++a) {
        if (geomean_scenes[a] == 0) {
            std::cout << "  " << archs[a].name()
                      << ": no valid scenes (skipped)\n";
            continue;
        }
        const double geomean =
            std::exp(geomean_accumulator[a] / geomean_scenes[a]);
        std::cout << "  " << archs[a].name() << ": "
                  << stats::formatDouble(geomean, 2) << "x\n";
        report.summary()[archs[a].name() + "_geomean_speedup"] = geomean;
    }
    std::cout << "\nContext: the paper's DRS reaches 1.67x-1.92x by\n"
                 "shuffling rays between warps at run time; software\n"
                 "pre-sorting (sort, cutcode) can only compact a batch\n"
                 "before launch, so coherence decays over the bounce.\n\n";
    report.write(timer);
    bench::printElapsed(timer);
    return 0;
}
