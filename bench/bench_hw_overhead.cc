/**
 * @file
 * Section 4.5 — hardware overhead. Reproduces the paper's storage
 * arithmetic (swap buffers 744 B, ray state table 488 B, ~1.4 KB/SMX,
 * 0.55% of the register file) and the area estimate anchored at the
 * paper's TSMC 28nm synthesis (0.042 mm^2/core, ~0.11% of a 550 mm^2
 * Kepler GPU), plus the comparison points for DMK and TBC.
 */

#include <iostream>

#include "bench_common.h"
#include "core/drs_config.h"
#include "core/hw_cost.h"
#include "stats/table.h"

int
main(int argc, char **argv)
{
    using namespace drs;
    // Static printout; parse the shared flags anyway so every bench
    // accepts the same command line (incl. --json).
    const auto options = bench::parseOptions(argc, argv);
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::WallTimer timer;
    core::DrsConfig config; // default: 1 backup row, 6 swap buffers
    config.backupRows = 1;
    config.useExtraRegisterBank = false;

    const int warps = config.spawnableWarps();
    const auto storage = core::computeDrsStorage(config, warps);
    const auto baselines = core::computeBaselineStorage();
    const auto area = core::estimateDrsArea(storage);

    std::cout << "==== Section 4.5: hardware overhead ====\n\n";
    std::cout << "DRS configuration: " << warps << " warps, "
              << config.backupRows << " backup row, " << config.swapBuffers
              << " swap buffers\n\n";

    stats::Table table({"item", "paper", "computed"});
    table.addRow({"swap buffers", "744 B",
                  std::to_string(storage.swapBufferBytes) + " B"});
    table.addRow({"ray state table", "488 B",
                  std::to_string(storage.rayStateTableBytes) + " B"});
    table.addRow({"renaming table", "-",
                  std::to_string(storage.renamingTableBytes) + " B"});
    table.addRow({"other control state", "-",
                  std::to_string(storage.controlStateBytes) + " B"});
    table.addRow({"total per SMX", "~1.4 KB",
                  stats::formatDouble(storage.totalBytes / 1024.0, 2) +
                      " KB"});
    table.addRow({"fraction of 256 KB RF", "0.55%",
                  stats::formatPercent(
                      storage.totalBytes / (256.0 * 1024.0))});
    table.addRow({"area per core (28nm)", "0.042 mm^2",
                  stats::formatDouble(area.mm2PerCore, 3) + " mm^2"});
    table.addRow({"fraction of 550 mm^2 GPU", "~0.11%",
                  stats::formatPercent(area.fractionOfGpu)});
    table.addRow({"DMK spawn memory", "114.75 KB",
                  stats::formatDouble(
                      baselines.dmkSpawnMemoryBytes / 1024.0, 2) +
                      " KB"});
    table.addRow({"TBC warp buffer", "2.5 KB",
                  stats::formatDouble(
                      baselines.tbcWarpBufferBytes / 1024.0, 2) +
                      " KB"});
    table.print(std::cout);

    std::cout << "\nNote: the paper's ray-state-table arithmetic\n"
                 "(61 x 32 x 20 bits = 488 bytes) only balances with 2\n"
                 "bits per entry; this model uses 2 bits (three traversal\n"
                 "states) and reproduces the 488-byte figure.\n";

    bench::JsonReport report("hw_overhead", scale, options);
    auto &summary = report.summary();
    summary["swap_buffer_bytes"] = storage.swapBufferBytes;
    summary["ray_state_table_bytes"] = storage.rayStateTableBytes;
    summary["renaming_table_bytes"] = storage.renamingTableBytes;
    summary["control_state_bytes"] = storage.controlStateBytes;
    summary["total_bytes_per_smx"] = storage.totalBytes;
    summary["rf_fraction"] = storage.totalBytes / (256.0 * 1024.0);
    summary["area_mm2_per_core"] = area.mm2PerCore;
    summary["area_fraction_of_gpu"] = area.fractionOfGpu;
    summary["dmk_spawn_memory_bytes"] = baselines.dmkSpawnMemoryBytes;
    summary["tbc_warp_buffer_bytes"] = baselines.tbcWarpBufferBytes;
    report.write(timer);
    return 0;
}
