/**
 * @file
 * Google-benchmark microbenchmarks of the substrates: BVH construction,
 * reference traversal, triangle intersection, low-discrepancy sampling
 * and the cache model. Guards against performance regressions in the
 * host-side simulator infrastructure.
 */

#include <benchmark/benchmark.h>

#include "bvh/builder.h"
#include "bvh/traverse.h"
#include "geom/rng.h"
#include "geom/sampler.h"
#include "scene/scenes.h"
#include "simt/cache.h"

namespace {

using namespace drs;

std::vector<geom::Triangle>
randomTriangles(int count)
{
    geom::Pcg32 rng(5);
    std::vector<geom::Triangle> tris;
    tris.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        const geom::Vec3 base{rng.nextFloat(0, 50), rng.nextFloat(0, 50),
                              rng.nextFloat(0, 50)};
        auto j = [&] {
            return geom::Vec3{rng.nextFloat(-0.5f, 0.5f),
                              rng.nextFloat(-0.5f, 0.5f),
                              rng.nextFloat(-0.5f, 0.5f)};
        };
        tris.push_back({base, base + j(), base + j(), 0});
    }
    return tris;
}

void
BM_BvhBuild(benchmark::State &state)
{
    const auto tris = randomTriangles(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto bvh = bvh::build(tris);
        benchmark::DoNotOptimize(bvh.nodeCount());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BvhBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void
BM_BvhTraverse(benchmark::State &state)
{
    const auto tris = randomTriangles(static_cast<int>(state.range(0)));
    const auto bvh = bvh::build(tris);
    geom::Pcg32 rng(11);
    for (auto _ : state) {
        geom::Ray ray;
        ray.origin = {rng.nextFloat(0, 50), rng.nextFloat(0, 50),
                      rng.nextFloat(0, 50)};
        ray.direction = geom::normalize(geom::Vec3{
            rng.nextFloat(-1, 1), rng.nextFloat(-1, 1),
            rng.nextFloat(-1, 1)});
        benchmark::DoNotOptimize(bvh::intersect(bvh, tris, ray));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BvhTraverse)->Arg(10000)->Arg(50000);

void
BM_TriangleIntersect(benchmark::State &state)
{
    const geom::Triangle tri{{0, 0, 5}, {4, 0, 5}, {0, 4, 5}, 0};
    geom::Ray ray;
    ray.origin = {1, 1, 0};
    ray.direction = {0, 0, 1};
    float t, u, v;
    for (auto _ : state)
        benchmark::DoNotOptimize(tri.intersect(ray, t, u, v));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TriangleIntersect);

void
BM_HaltonSampler(benchmark::State &state)
{
    geom::HaltonSampler sampler(3);
    std::uint64_t i = 0;
    for (auto _ : state) {
        sampler.startSample(i++);
        benchmark::DoNotOptimize(sampler.next2D());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HaltonSampler);

void
BM_CacheAccess(benchmark::State &state)
{
    simt::Cache cache(48 * 1024, 128, 6);
    geom::Pcg32 rng(13);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.nextUInt(1 << 20)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_SceneGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        auto scene = scene::makeConferenceScene(0.2f);
        benchmark::DoNotOptimize(scene.triangleCount());
    }
}
BENCHMARK(BM_SceneGeneration);

} // namespace

BENCHMARK_MAIN();
