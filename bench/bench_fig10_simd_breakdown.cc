/**
 * @file
 * Figure 10 — SIMD efficiency and utilization breakdown of Aila's
 * software method, DMK, TBC and DRS, per scene for bounces B1..B3 plus
 * the overall aggregate (simulated over B1..B4; the paper notes bounces
 * after the third behave like the third). The DMK's micro-kernel
 * spawn-related instructions are reported as the separate SI category.
 */

#include <iostream>
#include <vector>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace drs;
    const auto options = bench::parseOptions(argc, argv);
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Figure 10: SIMD efficiency breakdown", scale,
                       options);
    bench::WallTimer timer;

    const harness::Arch archs[] = {harness::Arch::Aila, harness::Arch::Dmk,
                                   harness::Arch::Tbc, harness::Arch::Drs};

    harness::SweepRunner runner(scale, options.jobs,
                                bench::makeSweepOptions(options));
    // indices[scene][arch][bounce]
    std::vector<std::vector<std::vector<std::size_t>>> indices;
    for (scene::SceneId id : scene::allSceneIds()) {
        auto &per_scene = indices.emplace_back();
        for (harness::Arch arch : archs) {
            const auto config = bench::makeRunConfig(scale, options);
            per_scene.push_back(
                runner.addCapture(id, arch, config, bench::kSweepBounces));
        }
    }
    bench::JsonReport report("fig10_simd_breakdown", scale, options);
    const auto results = bench::runSweep(runner, options, &report);
    const double clock_ghz = harness::RunConfig{}.gpu.clockGhz;

    std::size_t scene_index = 0;
    for (scene::SceneId id : scene::allSceneIds()) {
        stats::Table table({"arch", "bounce", "SIMD eff", "W1:8", "W9:16",
                            "W17:24", "W25:32", "SI"});
        for (std::size_t a = 0; a < std::size(archs); ++a) {
            const auto capture = harness::collectCapture(
                results, indices[scene_index][a]);
            auto add_row = [&](const std::string &bounce,
                               const simt::SimStats &stats) {
                table.addRow(
                    {harness::archName(archs[a]), bounce,
                     stats::formatPercent(stats.histogram.simdEfficiency()),
                     stats::formatPercent(stats.histogram.bucketFraction(0)),
                     stats::formatPercent(stats.histogram.bucketFraction(1)),
                     stats::formatPercent(stats.histogram.bucketFraction(2)),
                     stats::formatPercent(stats.histogram.bucketFraction(3)),
                     stats::formatPercent(
                         stats.histogram.spawnFraction())});
                auto &json_row = report.addStats(
                    scene::sceneName(id), harness::archName(archs[a]),
                    stats, clock_ghz);
                json_row["bounce"] = bounce;
            };
            for (std::size_t b = 0;
                 b < capture.perBounce.size() && b < 3; ++b)
                add_row("B" + std::to_string(b + 1), capture.perBounce[b]);
            add_row("overall", capture.overall);
        }
        std::cout << "\n--- " << scene::sceneName(id) << " ---\n";
        table.print(std::cout);
        std::cout.flush();
        ++scene_index;
    }
    std::cout << "\nPaper shape: DRS lifts overall efficiency from\n"
                 "~33-46% (Aila) to ~75-88%; DMK approaches DRS when its\n"
                 "SI category is excluded; TBC lands in between.\n\n";
    report.write(timer);
    bench::printElapsed(timer);
    return 0;
}
