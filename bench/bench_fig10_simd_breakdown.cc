/**
 * @file
 * Figure 10 — SIMD efficiency and utilization breakdown of Aila's
 * software method, DMK, TBC and DRS, per scene for bounces B1..B3 plus
 * the overall aggregate (simulated over B1..B4; the paper notes bounces
 * after the third behave like the third). The DMK's micro-kernel
 * spawn-related instructions are reported as the separate SI category.
 */

#include <iostream>

#include "bench_common.h"

int
main()
{
    using namespace drs;
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::printBanner("Figure 10: SIMD efficiency breakdown", scale);

    const harness::Arch archs[] = {harness::Arch::Aila, harness::Arch::Dmk,
                                   harness::Arch::Tbc, harness::Arch::Drs};

    for (scene::SceneId id : scene::allSceneIds()) {
        auto &prepared = bench::preparedScene(id, scale);
        stats::Table table({"arch", "bounce", "SIMD eff", "W1:8", "W9:16",
                            "W17:24", "W25:32", "SI"});
        for (harness::Arch arch : archs) {
            harness::RunConfig config = bench::makeRunConfig(scale);
            const auto result =
                harness::runCapture(arch, *prepared.tracer, prepared.trace,
                                    config, bench::kSweepBounces);
            auto add_row = [&](const std::string &bounce,
                               const simt::SimStats &stats) {
                table.addRow(
                    {harness::archName(arch), bounce,
                     stats::formatPercent(stats.histogram.simdEfficiency()),
                     stats::formatPercent(stats.histogram.bucketFraction(0)),
                     stats::formatPercent(stats.histogram.bucketFraction(1)),
                     stats::formatPercent(stats.histogram.bucketFraction(2)),
                     stats::formatPercent(stats.histogram.bucketFraction(3)),
                     stats::formatPercent(
                         stats.histogram.spawnFraction())});
            };
            for (std::size_t b = 0;
                 b < result.perBounce.size() && b < 3; ++b)
                add_row("B" + std::to_string(b + 1), result.perBounce[b]);
            add_row("overall", result.overall);
            std::cout << "." << std::flush;
        }
        std::cout << "\n\n--- " << scene::sceneName(id) << " ---\n";
        table.print(std::cout);
        std::cout.flush();
    }
    std::cout << "\nPaper shape: DRS lifts overall efficiency from\n"
                 "~33-46% (Aila) to ~75-88%; DMK approaches DRS when its\n"
                 "SI category is excluded; TBC lands in between.\n";
    return 0;
}
