/**
 * @file
 * Table 1 — GPU microarchitectural parameters. Prints the simulated
 * configuration next to the paper's values so any drift is visible.
 */

#include <iostream>

#include "bench_common.h"
#include "simt/config.h"
#include "stats/table.h"

int
main(int argc, char **argv)
{
    using namespace drs;
    // Static printout; parse the shared flags anyway so every bench
    // accepts the same command line (incl. --json).
    const auto options = bench::parseOptions(argc, argv);
    const auto scale = harness::ExperimentScale::fromEnvironment();
    bench::WallTimer timer;
    const simt::GpuConfig config;

    std::cout << "==== Table 1: GPU microarchitectural parameters ====\n\n";
    stats::Table table({"parameter", "paper", "simulated"});
    table.addRow({"SMX clock frequency", "980 MHz",
                  stats::formatDouble(config.clockGhz * 1000.0, 0) + " MHz"});
    table.addRow({"SIMD lanes", "32", std::to_string(config.simdLanes)});
    table.addRow({"SMXs/GPU", "15", std::to_string(config.numSmx)});
    table.addRow({"Warp scheduler", "Greedy-Then-Oldest",
                  "Greedy-Then-Oldest"});
    table.addRow({"Warp schedulers/SMX", "4",
                  std::to_string(config.schedulersPerSmx)});
    table.addRow({"Inst. dispatch units/SMX", "8",
                  std::to_string(config.dispatchUnitsPerSmx)});
    table.addRow({"Registers/SMX", "65536",
                  std::to_string(config.registersPerSmx)});
    table.addRow({"L1 data cache", "48 KB",
                  std::to_string(config.memory.l1Data.sizeBytes / 1024) +
                      " KB"});
    table.addRow({"L1 texture cache", "48 KB",
                  std::to_string(config.memory.l1Texture.sizeBytes / 1024) +
                      " KB"});
    table.addRow({"L2 cache", "1536 KB",
                  std::to_string(config.memory.l2.sizeBytes / 1024) +
                      " KB"});
    table.print(std::cout);

    bench::JsonReport report("table1_config", scale, options);
    auto &summary = report.summary();
    summary["clock_ghz"] = config.clockGhz;
    summary["simd_lanes"] = config.simdLanes;
    summary["num_smx"] = config.numSmx;
    summary["schedulers_per_smx"] = config.schedulersPerSmx;
    summary["dispatch_units_per_smx"] = config.dispatchUnitsPerSmx;
    summary["registers_per_smx"] = config.registersPerSmx;
    summary["l1_data_bytes"] = config.memory.l1Data.sizeBytes;
    summary["l1_texture_bytes"] = config.memory.l1Texture.sizeBytes;
    summary["l2_bytes"] = config.memory.l2.sizeBytes;
    report.write(timer);
    return 0;
}
