#pragma once

/**
 * @file
 * Shared plumbing for the paper-reproduction bench binaries: experiment
 * scale from the environment, scene preparation with in-process caching,
 * and result-row formatting. Every bench prints the rows/series of one
 * paper table or figure (see DESIGN.md section 4).
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "harness/harness.h"
#include "stats/table.h"

namespace drs::bench {

/** Scale banner so every output records its configuration. */
inline void
printBanner(const std::string &title, const harness::ExperimentScale &scale)
{
    std::cout << "==== " << title << " ====\n";
    std::cout << "scenes at scale " << scale.sceneScale << ", "
              << scale.raysPerBounce << " rays/bounce (paper: 2M), "
              << scale.numSmx << " SMX, film " << scale.width << "x"
              << scale.height << "x" << scale.samplesPerPixel << "spp\n"
              << "override via DRS_RAYS / DRS_SCALE / DRS_SMX / DRS_WIDTH / "
                 "DRS_HEIGHT / DRS_SPP\n\n";
    std::cout.flush();
}

/** Prepared scenes, cached per process so multi-scene benches pay once. */
inline harness::PreparedScene &
preparedScene(scene::SceneId id, const harness::ExperimentScale &scale)
{
    static std::map<int, std::unique_ptr<harness::PreparedScene>> cache;
    auto &slot = cache[static_cast<int>(id)];
    if (!slot) {
        std::cout << "[prep] building scene '" << scene::sceneName(id)
                  << "' and capturing ray trace...\n";
        std::cout.flush();
        slot = std::make_unique<harness::PreparedScene>(
            harness::prepareScene(id, scale));
        std::cout << "[prep] " << slot->scene().triangleCount()
                  << " triangles, " << slot->trace.totalRays()
                  << " rays captured over " << slot->trace.bounces.size()
                  << " bounces\n";
        std::cout.flush();
    }
    return *slot;
}

/** Default run configuration derived from the experiment scale. */
inline harness::RunConfig
makeRunConfig(const harness::ExperimentScale &scale)
{
    harness::RunConfig config;
    config.gpu.numSmx = scale.numSmx;
    return config;
}

/** Bounces simulated by the sweep benches (B1..B4, like Figure 8). */
inline constexpr int kSweepBounces = 4;

} // namespace drs::bench
