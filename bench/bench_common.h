#pragma once

/**
 * @file
 * Shared plumbing for the paper-reproduction bench binaries: experiment
 * scale from the environment, command-line options for the parallel
 * sweep runner, and wall-clock timing. Every bench prints the rows or
 * series of one paper table or figure (see DESIGN.md section 4),
 * describing its experiment as a SweepRunner grid so independent
 * simulations execute concurrently and scenes are prepared once.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>

#include "exec/thread_pool.h"
#include "fleet/fleet.h"
#include "harness/harness.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/report.h"
#include "stats/table.h"

namespace drs::bench {

/** Command-line options shared by every bench binary. */
struct Options
{
    /** Concurrent simulations (--jobs N / DRS_JOBS). */
    int jobs = 1;
    /** Worker threads inside each simulation (--smx-threads N). */
    int smxThreads = 1;
    /** Structured report destination (--json PATH); empty = no report. */
    std::string jsonPath;
    /** Completed-job journal for crash recovery (--journal PATH). */
    std::string journalPath;
    /** Replay the journal instead of re-running finished jobs. */
    bool resume = false;
    /**
     * Worker processes for the sweep (--fleet N / DRS_FLEET); 0 = run
     * in-process. With a fleet the jobs are sharded across fork()ed
     * workers with crash isolation and supervision (src/fleet), and the
     * merged results are bit-identical to the in-process sweep.
     */
    int fleetWorkers = 0;
    /**
     * Live progress ticker on stderr (--progress / DRS_PROGRESS=1):
     * one repainted status line with jobs done/total and an ETA; fleet
     * runs add live worker states and the degraded-job count. Pure
     * observer — results and reports are identical either way.
     */
    bool progress = false;
};

/**
 * Parse the shared bench flags: --jobs N (default: DRS_JOBS or the
 * hardware concurrency), --fleet N (default: DRS_FLEET or 0 = no
 * fleet), --smx-threads N (default: DRS_SMX_THREADS or 1), --json
 * PATH, --journal PATH, --resume and --progress (default:
 * DRS_PROGRESS). Unknown arguments warn on stderr and are ignored,
 * keeping the binaries scriptable.
 */
inline Options
parseOptions(int argc, char **argv)
{
    auto positive_int = [](const char *flag, const char *text, int fallback) {
        char *end = nullptr;
        const long v = std::strtol(text, &end, 10);
        if (end == text || *end != '\0' || v <= 0 || v > 1'000'000) {
            std::fprintf(stderr,
                         "warning: ignoring %s=\"%s\" "
                         "(want a positive integer)\n",
                         flag, text);
            return fallback;
        }
        return static_cast<int>(v);
    };

    Options options;
    options.jobs = exec::defaultConcurrency();
    if (const char *s = std::getenv("DRS_SMX_THREADS"))
        options.smxThreads =
            positive_int("DRS_SMX_THREADS", s, options.smxThreads);
    if (const char *s = std::getenv("DRS_FLEET"))
        options.fleetWorkers = positive_int("DRS_FLEET", s, 0);
    if (const char *s = std::getenv("DRS_PROGRESS")) {
        if (std::strcmp(s, "0") == 0)
            options.progress = false;
        else if (std::strcmp(s, "1") == 0)
            options.progress = true;
        else
            std::fprintf(stderr,
                         "warning: ignoring DRS_PROGRESS=\"%s\" "
                         "(want 0 or 1)\n",
                         s);
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value_of = [&](const char *flag) -> const char * {
            const std::size_t len = std::strlen(flag);
            if (arg.compare(0, len, flag) == 0 && arg.size() > len &&
                arg[len] == '=')
                return argv[i] + len + 1;
            if (arg == flag && i + 1 < argc)
                return argv[++i];
            return nullptr;
        };
        if (const char *v = value_of("--jobs"))
            options.jobs = positive_int("--jobs", v, options.jobs);
        else if (const char *v = value_of("--fleet"))
            options.fleetWorkers =
                positive_int("--fleet", v, options.fleetWorkers);
        else if (const char *v = value_of("--smx-threads"))
            options.smxThreads =
                positive_int("--smx-threads", v, options.smxThreads);
        else if (const char *v = value_of("--json")) {
            // Same strict contract as the environment knobs: a malformed
            // (empty) value warns and is ignored rather than silently
            // producing no report.
            if (*v == '\0')
                std::fprintf(stderr,
                             "warning: ignoring --json with an empty "
                             "path\n");
            else
                options.jsonPath = v;
        } else if (const char *v = value_of("--journal")) {
            if (*v == '\0')
                std::fprintf(stderr,
                             "warning: ignoring --journal with an empty "
                             "path\n");
            else
                options.journalPath = v;
        } else if (arg == "--resume")
            options.resume = true;
        else if (arg == "--progress")
            options.progress = true;
        else
            std::fprintf(stderr, "warning: ignoring unknown argument %s\n",
                         arg.c_str());
    }
    return options;
}

/** Wall-clock stopwatch for whole-bench timing. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Scale banner so every output records its configuration. */
inline void
printBanner(const std::string &title, const harness::ExperimentScale &scale,
            const Options &options)
{
    std::cout << "==== " << title << " ====\n";
    std::cout << "scenes at scale " << scale.sceneScale << ", "
              << scale.raysPerBounce << " rays/bounce (paper: 2M), "
              << scale.numSmx << " SMX, film " << scale.width << "x"
              << scale.height << "x" << scale.samplesPerPixel << "spp\n"
              << "override via DRS_RAYS / DRS_SCALE / DRS_SMX / DRS_WIDTH / "
                 "DRS_HEIGHT / DRS_SPP\n"
              << "running " << options.jobs << " concurrent simulation"
              << (options.jobs == 1 ? "" : "s") << " (--jobs N / DRS_JOBS)";
    if (options.fleetWorkers > 0)
        std::cout << " across a fleet of " << options.fleetWorkers
                  << " worker processes (--fleet N / DRS_FLEET)";
    if (options.smxThreads > 1)
        std::cout << ", " << options.smxThreads << " SMX threads each";
    std::cout << "\n\n";
    std::cout.flush();
}

/** Default run configuration derived from scale + options. */
inline harness::RunConfig
makeRunConfig(const harness::ExperimentScale &scale, const Options &options)
{
    harness::RunConfig config;
    config.gpu.numSmx = scale.numSmx;
    config.smxThreads = options.smxThreads;
    config.trace = obs::TraceConfig::fromEnvironment();
    config.sample = obs::SampleConfig::fromEnvironment();
    return config;
}

/**
 * Live progress ticker (--progress / DRS_PROGRESS=1): one stderr
 * status line, repainted in place (\r), with jobs done/total and an
 * ETA. In-process sweeps feed it per-completion (ETA from the mean
 * completion rate); fleet runs feed it the coordinator's FleetProgress
 * (EWMA-based ETA plus live worker states and the degraded count).
 * Pure observer: it reads progress, never influences it, and paints
 * only to stderr so piped stdout tables stay clean.
 */
class ProgressTicker
{
  public:
    /** In-process sweep callback (called from worker threads). */
    void onSweep(std::size_t done, std::size_t total)
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        double eta = -1.0;
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start_).count();
        if (done > 0 && done < total)
            eta = elapsed / static_cast<double>(done) *
                  static_cast<double>(total - done);
        char text[192];
        std::snprintf(text, sizeof text, "[progress] %zu/%zu jobs (%.0f%%)%s",
                      done, total,
                      total ? 100.0 * static_cast<double>(done) /
                                  static_cast<double>(total)
                            : 100.0,
                      etaText(done >= total ? 0.0 : eta).c_str());
        paint(text, done >= total);
    }

    /** Fleet coordinator callback (called from the supervision loop). */
    void onFleet(const fleet::FleetProgress &progress)
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        char text[256];
        char degraded[48] = "";
        if (progress.degraded > 0)
            std::snprintf(degraded, sizeof degraded, ", %d degraded",
                          progress.degraded);
        std::snprintf(text, sizeof text,
                      "[progress] %zu/%zu jobs (%zu in flight), "
                      "%d/%d workers running%s%s",
                      progress.jobsDone, progress.jobsTotal,
                      progress.jobsInflight, progress.workersRunning,
                      progress.workersAlive, degraded,
                      etaText(progress.etaSeconds).c_str());
        paint(text, progress.jobsDone >= progress.jobsTotal);
    }

  private:
    using Clock = std::chrono::steady_clock;

    static std::string etaText(double seconds)
    {
        if (seconds < 0.0)
            return "";
        char buffer[48];
        if (seconds >= 90.0)
            std::snprintf(buffer, sizeof buffer, ", eta %.1f min",
                          seconds / 60.0);
        else
            std::snprintf(buffer, sizeof buffer, ", eta %.0f s", seconds);
        return buffer;
    }

    /** Repaint the line; pad over the previous one, newline when done. */
    void paint(const char *text, bool final)
    {
        if (finished_)
            return;
        const auto now = Clock::now();
        if (!final && painted_ &&
            std::chrono::duration<double>(now - lastPaint_).count() < 0.1)
            return;
        lastPaint_ = now;
        painted_ = true;
        std::string line(text);
        const std::size_t width = std::max(line.size(), lastWidth_);
        lastWidth_ = line.size();
        line.resize(width, ' ');
        std::fprintf(stderr, "\r%s%s", line.c_str(), final ? "\n" : "");
        std::fflush(stderr);
        if (final)
            finished_ = true;
    }

    std::mutex mutex_;
    Clock::time_point start_ = Clock::now();
    Clock::time_point lastPaint_{};
    std::size_t lastWidth_ = 0;
    bool painted_ = false;
    bool finished_ = false;
};

/**
 * Robust-execution policy for the bench's sweep: environment knobs
 * (DRS_FAULT_SEED, DRS_WATCHDOG, DRS_JOB_TIMEOUT, DRS_CRASH_AFTER) plus
 * the --journal/--resume/--progress flags. With none of them set this
 * is the all-defaults policy and the sweep behaves exactly as before.
 */
inline harness::SweepOptions
makeSweepOptions(const Options &options)
{
    harness::SweepOptions sweep = harness::SweepOptions::fromEnvironment();
    sweep.journalPath = options.journalPath;
    sweep.resume = options.resume;
    if (sweep.resume && sweep.journalPath.empty()) {
        std::fprintf(stderr,
                     "warning: --resume without --journal PATH does "
                     "nothing\n");
        sweep.resume = false;
    }
    if (options.progress) {
        // The ticker outlives this scope through the callback's copy.
        // Fleet workers clear the callback after fork (workerMain), so
        // only the in-process sweep ever paints through it.
        auto ticker = std::make_shared<ProgressTicker>();
        sweep.progress = [ticker](std::size_t done, std::size_t total) {
            ticker->onSweep(done, total);
        };
    }
    return sweep;
}

/**
 * Structured bench report (--json PATH): the document is always built —
 * the cost is negligible next to the simulations — but only validated
 * and written when a path was given. Rows are open-ended JSON objects;
 * addStats prefills one with the well-known metric fields of a run.
 */
class JsonReport
{
  public:
    JsonReport(const std::string &bench_name,
               const harness::ExperimentScale &scale, const Options &options)
        : report_(bench_name), path_(options.jsonPath)
    {
        report_.scale() = harness::scaleJson(scale);
        report_.options()["jobs"] = options.jobs;
        report_.options()["smx_threads"] = options.smxThreads;
        report_.options()["fleet"] = options.fleetWorkers;
    }

    /** One empty result row, to fill in place. */
    obs::Json &addRow() { return report_.addResult(); }

    /** One result row prefilled from a simulation's statistics. */
    obs::Json &addStats(const std::string &scene, const std::string &arch,
                        const simt::SimStats &stats, double clock_ghz)
    {
        obs::Json &row = report_.addResult();
        row = harness::statsJson(stats, clock_ghz);
        row["scene"] = scene;
        row["arch"] = arch;
        return row;
    }

    /**
     * One result row prefilled from a sweep result. Same metric fields
     * as the SimStats overload plus, when the run sampled (DRS_SAMPLE),
     * the "attribution" and "timeline" profiler sections (schema v3+),
     * and, when it traced (DRS_TRACE), the schema-v4 "trace" ring
     * counters.
     */
    obs::Json &addStats(const std::string &scene, const std::string &arch,
                        const harness::SweepResult &result, double clock_ghz)
    {
        obs::Json &row = addStats(scene, arch, result.stats, clock_ghz);
        if (result.observations)
            harness::addObservationsJson(row, *result.observations,
                                         result.stats);
        return row;
    }

    /** Bench-specific aggregate object. */
    obs::Json &summary() { return report_.summary(); }

    /**
     * Record a sweep's robustness outcome: flips the top-level
     * "degraded" flag when any job was quarantined and files a
     * summary.sweep section with per-job attempts / fault seeds (only
     * for jobs that needed retries or ran with faults enabled) plus the
     * quarantined jobs with their last error. Quarantined jobs are
     * reported, never dropped. Call once per SweepRunner::run().
     */
    void noteSweep(const std::vector<harness::SweepResult> &results)
    {
        std::size_t replayed = 0;
        bool degraded = false;
        obs::Json quarantined = obs::Json::array();
        obs::Json jobs = obs::Json::array();
        for (std::size_t i = 0; i < results.size(); ++i) {
            const harness::SweepResult &result = results[i];
            replayed += result.fromJournal ? 1u : 0u;
            if (result.attempts > 1 || result.faultSeed != 0 ||
                result.failed) {
                obs::Json &job = jobs.push(obs::Json::object());
                job["job"] = static_cast<std::uint64_t>(i);
                job["attempts"] = static_cast<std::int64_t>(result.attempts);
                job["fault_seed"] = result.faultSeed;
            }
            if (!result.failed)
                continue;
            degraded = true;
            obs::Json &entry = quarantined.push(obs::Json::object());
            entry["job"] = static_cast<std::uint64_t>(i);
            entry["attempts"] = static_cast<std::int64_t>(result.attempts);
            entry["fault_seed"] = result.faultSeed;
            entry["error"] = result.error;
        }
        report_.setDegraded(degraded);
        if (jobs.size() == 0 && replayed == 0 && !degraded)
            return;
        obs::Json &sweep = report_.summary()["sweep"];
        sweep = obs::Json::object();
        sweep["total_jobs"] = static_cast<std::uint64_t>(results.size());
        sweep["replayed_from_journal"] =
            static_cast<std::uint64_t>(replayed);
        sweep["jobs"] = std::move(jobs);
        sweep["quarantined"] = std::move(quarantined);
    }

    /**
     * Record a fleet run's supervision counters as summary.fleet and
     * flip the top-level "degraded" flag when the fleet shrank to the
     * point of dropping jobs (or was cancelled). Call after noteSweep —
     * noteSweep recomputes "degraded" from the per-job outcomes, and
     * this adds the fleet-level causes on top.
     */
    void noteFleet(const fleet::FleetSummary &summary)
    {
        report_.summary()["fleet"] = fleet::fleetSummaryJson(summary);
        if (summary.degradedJobs > 0 || summary.cancelled)
            report_.setDegraded(true);
    }

    /** Validate and write the report; call once, at the end. */
    void write(const WallTimer &timer)
    {
        if (path_.empty())
            return;
        report_.setWallSeconds(timer.seconds());
        const std::string problem =
            obs::validateBenchReport(report_.document());
        if (!problem.empty())
            std::fprintf(stderr, "warning: bench report fails its schema: %s\n",
                         problem.c_str());
        std::string error;
        if (!report_.writeFile(path_, &error))
            std::fprintf(stderr, "warning: bench report not written: %s\n",
                         error.c_str());
        else
            std::printf("json report: %s\n", path_.c_str());
    }

  private:
    obs::BenchReport report_;
    std::string path_;
};

/**
 * Execute a bench's queued sweep, honouring --fleet: with
 * options.fleetWorkers > 0 the queued jobs are taken off the runner and
 * sharded across a supervised fleet of worker processes
 * (FleetOptions::fromEnvironment with --fleet overriding the worker
 * count); otherwise this is exactly runner.run(). Either way the
 * results come back in grid order with identical SimStats — the fleet's
 * bit-identity contract — and the sweep/fleet robustness summaries are
 * recorded on @p report when one is given.
 */
inline std::vector<harness::SweepResult>
runSweep(harness::SweepRunner &runner, const Options &options,
         JsonReport *report = nullptr)
{
    if (options.fleetWorkers <= 0) {
        std::vector<harness::SweepResult> results = runner.run();
        if (report)
            report->noteSweep(results);
        return results;
    }
    fleet::FleetOptions fleetOptions = fleet::FleetOptions::fromEnvironment();
    fleetOptions.workers = options.fleetWorkers;
    std::shared_ptr<ProgressTicker> ticker;
    if (options.progress) {
        ticker = std::make_shared<ProgressTicker>();
        fleetOptions.onProgress = [ticker](const fleet::FleetProgress &p) {
            ticker->onFleet(p);
        };
    }
    fleet::FleetCoordinator coordinator(runner.scale(), runner.options(),
                                        fleetOptions);
    std::vector<harness::SweepResult> results =
        coordinator.run(runner.takePending());
    if (report) {
        report->noteSweep(results);
        report->noteFleet(coordinator.summary());
    }
    return results;
}

/** Print the closing wall-clock line of a bench. */
inline void
printElapsed(const WallTimer &timer)
{
    std::printf("total wall-clock: %.2f s\n", timer.seconds());
    std::fflush(stdout);
}

/** Bounces simulated by the sweep benches (B1..B4, like Figure 8). */
inline constexpr int kSweepBounces = 4;

} // namespace drs::bench
