#pragma once

/**
 * @file
 * Shared plumbing for the paper-reproduction bench binaries: experiment
 * scale from the environment, command-line options for the parallel
 * sweep runner, and wall-clock timing. Every bench prints the rows or
 * series of one paper table or figure (see DESIGN.md section 4),
 * describing its experiment as a SweepRunner grid so independent
 * simulations execute concurrently and scenes are prepared once.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "exec/thread_pool.h"
#include "harness/harness.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "obs/report.h"
#include "stats/table.h"

namespace drs::bench {

/** Command-line options shared by every bench binary. */
struct Options
{
    /** Concurrent simulations (--jobs N / DRS_JOBS). */
    int jobs = 1;
    /** Worker threads inside each simulation (--smx-threads N). */
    int smxThreads = 1;
    /** Structured report destination (--json PATH); empty = no report. */
    std::string jsonPath;
};

/**
 * Parse the shared bench flags: --jobs N (default: DRS_JOBS or the
 * hardware concurrency) and --smx-threads N (default: DRS_SMX_THREADS
 * or 1). Unknown arguments warn on stderr and are ignored, keeping the
 * binaries scriptable.
 */
inline Options
parseOptions(int argc, char **argv)
{
    auto positive_int = [](const char *flag, const char *text, int fallback) {
        char *end = nullptr;
        const long v = std::strtol(text, &end, 10);
        if (end == text || *end != '\0' || v <= 0 || v > 1'000'000) {
            std::fprintf(stderr,
                         "warning: ignoring %s=\"%s\" "
                         "(want a positive integer)\n",
                         flag, text);
            return fallback;
        }
        return static_cast<int>(v);
    };

    Options options;
    options.jobs = exec::defaultConcurrency();
    if (const char *s = std::getenv("DRS_SMX_THREADS"))
        options.smxThreads =
            positive_int("DRS_SMX_THREADS", s, options.smxThreads);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value_of = [&](const char *flag) -> const char * {
            const std::size_t len = std::strlen(flag);
            if (arg.compare(0, len, flag) == 0 && arg.size() > len &&
                arg[len] == '=')
                return argv[i] + len + 1;
            if (arg == flag && i + 1 < argc)
                return argv[++i];
            return nullptr;
        };
        if (const char *v = value_of("--jobs"))
            options.jobs = positive_int("--jobs", v, options.jobs);
        else if (const char *v = value_of("--smx-threads"))
            options.smxThreads =
                positive_int("--smx-threads", v, options.smxThreads);
        else if (const char *v = value_of("--json")) {
            // Same strict contract as the environment knobs: a malformed
            // (empty) value warns and is ignored rather than silently
            // producing no report.
            if (*v == '\0')
                std::fprintf(stderr,
                             "warning: ignoring --json with an empty "
                             "path\n");
            else
                options.jsonPath = v;
        } else
            std::fprintf(stderr, "warning: ignoring unknown argument %s\n",
                         arg.c_str());
    }
    return options;
}

/** Wall-clock stopwatch for whole-bench timing. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Scale banner so every output records its configuration. */
inline void
printBanner(const std::string &title, const harness::ExperimentScale &scale,
            const Options &options)
{
    std::cout << "==== " << title << " ====\n";
    std::cout << "scenes at scale " << scale.sceneScale << ", "
              << scale.raysPerBounce << " rays/bounce (paper: 2M), "
              << scale.numSmx << " SMX, film " << scale.width << "x"
              << scale.height << "x" << scale.samplesPerPixel << "spp\n"
              << "override via DRS_RAYS / DRS_SCALE / DRS_SMX / DRS_WIDTH / "
                 "DRS_HEIGHT / DRS_SPP\n"
              << "running " << options.jobs << " concurrent simulation"
              << (options.jobs == 1 ? "" : "s") << " (--jobs N / DRS_JOBS)";
    if (options.smxThreads > 1)
        std::cout << ", " << options.smxThreads << " SMX threads each";
    std::cout << "\n\n";
    std::cout.flush();
}

/** Default run configuration derived from scale + options. */
inline harness::RunConfig
makeRunConfig(const harness::ExperimentScale &scale, const Options &options)
{
    harness::RunConfig config;
    config.gpu.numSmx = scale.numSmx;
    config.smxThreads = options.smxThreads;
    config.trace = obs::TraceConfig::fromEnvironment();
    return config;
}

/**
 * Structured bench report (--json PATH): the document is always built —
 * the cost is negligible next to the simulations — but only validated
 * and written when a path was given. Rows are open-ended JSON objects;
 * addStats prefills one with the well-known metric fields of a run.
 */
class JsonReport
{
  public:
    JsonReport(const std::string &bench_name,
               const harness::ExperimentScale &scale, const Options &options)
        : report_(bench_name), path_(options.jsonPath)
    {
        report_.scale() = harness::scaleJson(scale);
        report_.options()["jobs"] = options.jobs;
        report_.options()["smx_threads"] = options.smxThreads;
    }

    /** One empty result row, to fill in place. */
    obs::Json &addRow() { return report_.addResult(); }

    /** One result row prefilled from a simulation's statistics. */
    obs::Json &addStats(const std::string &scene, const std::string &arch,
                        const simt::SimStats &stats, double clock_ghz)
    {
        obs::Json &row = report_.addResult();
        row = harness::statsJson(stats, clock_ghz);
        row["scene"] = scene;
        row["arch"] = arch;
        return row;
    }

    /** Bench-specific aggregate object. */
    obs::Json &summary() { return report_.summary(); }

    /** Validate and write the report; call once, at the end. */
    void write(const WallTimer &timer)
    {
        if (path_.empty())
            return;
        report_.setWallSeconds(timer.seconds());
        const std::string problem =
            obs::validateBenchReport(report_.document());
        if (!problem.empty())
            std::fprintf(stderr, "warning: bench report fails its schema: %s\n",
                         problem.c_str());
        std::string error;
        if (!report_.writeFile(path_, &error))
            std::fprintf(stderr, "warning: bench report not written: %s\n",
                         error.c_str());
        else
            std::printf("json report: %s\n", path_.c_str());
    }

  private:
    obs::BenchReport report_;
    std::string path_;
};

/** Print the closing wall-clock line of a bench. */
inline void
printElapsed(const WallTimer &timer)
{
    std::printf("total wall-clock: %.2f s\n", timer.seconds());
    std::fflush(stdout);
}

/** Bounces simulated by the sweep benches (B1..B4, like Figure 8). */
inline constexpr int kSweepBounces = 4;

} // namespace drs::bench
